"""Serve-layer observability tests: metrics edge cases, Prometheus over
HTTP, enriched per-model rows, trace-id plumbing and the end-to-end
provenance acceptance path.

The acceptance criterion pinned here: with provenance logging on, a
``/score`` response's record replays bit-identically through
``detect_only`` via :func:`repro.obs.verify_record` (and the
``python -m repro.obs verify`` CLI).
"""

from __future__ import annotations

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.obs import Tracer, read_log, score_digest, use_tracer, verify_log, verify_record
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.sampling import SamplerConfig
from repro.serve import ModelRegistry, ScoringClient, ServeConfig, start_server_thread
from repro.serve.metrics import ServerMetrics


def _tiny_config(seed: int) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=seed,
    )


GRAPH = make_example_graph(seed=7)
OTHER = make_example_graph(seed=11)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    detector = TPGrGAD(_tiny_config(1))
    detector.fit_detect(GRAPH)
    return str(detector.save(tmp_path_factory.mktemp("obs-serve") / "model"))


@pytest.fixture()
def registry(artifact):
    registry = ModelRegistry()
    registry.load("fraud", artifact)
    return registry


def _http_get(port, path, accept=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path, headers={"Accept": accept} if accept else {})
        response = conn.getresponse()
        return response.status, response.getheader("content-type"), response.read().decode()
    finally:
        conn.close()


# ----------------------------------------------------------------------
class TestServerMetricsEdgeCases:
    def test_qps_window_with_fewer_than_two_samples(self):
        metrics = ServerMetrics()
        assert metrics.snapshot()["qps_window"] == 0.0
        metrics.record_scored(0.005)
        assert metrics.snapshot()["qps_window"] == 0.0
        metrics.record_scored(0.005)
        assert metrics.snapshot()["qps_window"] >= 0.0  # defined from 2 samples on

    def test_latency_window_eviction_keeps_most_recent(self):
        metrics = ServerMetrics(latency_window=4)
        for ms in (100.0, 1.0, 2.0, 3.0, 4.0):  # the 100ms outlier must fall out
            metrics.record_scored(ms / 1e3)
        values_ms = [v * 1e3 for v in metrics._latencies.values()]
        assert values_ms == [1.0, 2.0, 3.0, 4.0]
        snap = metrics.snapshot()
        assert snap["p95_latency_ms"] == round(float(np.percentile(values_ms, 95)), 3)

    def test_concurrent_record_and_snapshot_under_threads(self):
        metrics = ServerMetrics(latency_window=256)
        n_threads, per_thread = 8, 200
        errors = []

        def writer(i):
            try:
                for j in range(per_thread):
                    metrics.record_admitted()
                    metrics.record_scored(0.001 * ((i + j) % 7 + 1))
                    metrics.record_response(200)
                    metrics.record_batch(2, 1, 2)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                for _ in range(100):
                    snap = metrics.snapshot()
                    assert snap["scored_total"] >= 0
                    assert snap["p50_latency_ms"] >= 0.0
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_threads)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = metrics.snapshot()
        total = n_threads * per_thread
        assert snap["scored_total"] == total
        assert snap["requests_total"] == total
        assert snap["responses_by_status"][200] == total
        assert snap["dedup_hits_total"] == total  # each batch: 2 scored, 1 unique
        assert len(metrics._latencies) == 256  # bounded despite 1600 records

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ServerMetrics(latency_window=0)


# ----------------------------------------------------------------------
class TestMetricsOverHTTP:
    @pytest.fixture()
    def running(self, registry):
        handle = start_server_thread(registry, ServeConfig(max_batch=4, max_wait_ms=2))
        client = ScoringClient(port=handle.port)
        try:
            yield handle, client
        finally:
            client.close()
            handle.stop()

    def test_prometheus_via_query_param(self, running):
        handle, client = running
        client.score(GRAPH, model="fraud")
        status, content_type, body = _http_get(handle.port, "/metrics?format=prometheus")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_scored_total counter" in body
        assert "repro_scored_total 1" in body
        assert 'repro_model_info{model="fraud",version="1"' in body
        assert 'repro_model_requests_served{model="fraud"} 1' in body

    def test_prometheus_via_accept_header(self, running):
        handle, _ = running
        status, content_type, body = _http_get(handle.port, "/metrics", accept="text/plain")
        assert status == 200 and content_type == PROMETHEUS_CONTENT_TYPE
        assert body.startswith("# TYPE")

    def test_default_metrics_stay_json(self, running):
        handle, _ = running
        status, content_type, body = _http_get(handle.port, "/metrics")
        assert status == 200 and content_type == "application/json"
        payload = json.loads(body)
        assert "scored_total" in payload and "models" in payload
        # Explicit JSON accept also negotiates JSON even alongside text/plain.
        _, content_type, _ = _http_get(
            handle.port, "/metrics", accept="text/plain, application/json"
        )
        assert content_type == "application/json"

    def test_per_model_metrics_enrichment(self, running, artifact):
        handle, client = running
        client.score(GRAPH, model="fraud")
        client.score(GRAPH, model="fraud", mode="fit_detect")
        client.load_model("fraud", artifact)  # hot swap bumps version
        row = client.metrics()["models"]["fraud"]
        for key in (
            "version", "swap_count", "config_hash", "loaded_at_unix",
            "requests_served", "tape_nodes_total", "cache_evictions", "fit_cache",
        ):
            assert key in row
        assert row["version"] == 2 and row["swap_count"] == 1
        # Counters belong to the live entry: the swap reset them.
        assert row["requests_served"] == 0
        client.score(OTHER, model="fraud", mode="fit_detect")
        row = client.metrics()["models"]["fraud"]
        assert row["requests_served"] == 1
        assert row["tape_nodes_total"] > 0  # fit mode trains, so the tape grew


# ----------------------------------------------------------------------
class TestServeTracing:
    def test_request_and_score_spans_with_response_trace_id(self, registry):
        tracer = Tracer()
        with use_tracer(tracer):
            handle = start_server_thread(registry, ServeConfig(max_batch=4, max_wait_ms=2))
            client = ScoringClient(port=handle.port)
            try:
                response = client.score(GRAPH, model="fraud")
            finally:
                client.close()
                handle.stop()
        assert response["trace_id"] == tracer.trace_id
        names = {s.name for s in tracer.spans}
        assert {"serve.request", "serve.batch", "serve.score_group"} <= names
        batch = next(s for s in tracer.spans if s.name == "serve.batch")
        score = next(s for s in tracer.spans if s.name == "serve.score_group")
        # The executor thread inherited the batch span via the copied context.
        assert score.parent_id == batch.span_id
        request = next(s for s in tracer.spans if s.name == "serve.request")
        assert request.attrs["path"] == "/score" and request.attrs["status"] == 200

    def test_untraced_response_has_no_trace_id(self, registry):
        handle = start_server_thread(registry, ServeConfig())
        client = ScoringClient(port=handle.port)
        try:
            response = client.score(GRAPH, model="fraud")
        finally:
            client.close()
            handle.stop()
        assert "trace_id" not in response


# ----------------------------------------------------------------------
class TestServeProvenanceAcceptance:
    def test_scored_response_replays_bit_identically(self, registry, artifact, tmp_path):
        """ISSUE acceptance: serve → provenance record → detect_only replay."""
        log_path = str(tmp_path / "provenance.jsonl")
        config = ServeConfig(
            max_batch=4, max_wait_ms=2,
            provenance_path=log_path, provenance_include_graph=True,
        )
        handle = start_server_thread(registry, config)
        client = ScoringClient(port=handle.port)
        try:
            plain = client.score(GRAPH, model="fraud")
            explicit = client.score(OTHER, model="fraud", threshold=1e12)
        finally:
            client.close()
            handle.stop()

        assert plain["provenance"]["score_digest"] == score_digest(plain["result"])
        records = read_log(log_path)
        assert len(records) == 2
        by_id = {r["record_id"]: r for r in records}
        for response in (plain, explicit):
            record = by_id[response["provenance"]["record_id"]]
            assert record["model"] == "fraud" and record["version"] == 1
            assert record["mode"] == "detect_only"
            assert record["graph_fingerprint"] == response["graph_fingerprint"]
            outcome = verify_record(record, artifact)
            assert outcome.ok, outcome.describe()
            assert outcome.replayed_digest == response["provenance"]["score_digest"]
        assert all(outcome.ok for outcome in verify_log(log_path, artifact))

    def test_duplicate_requests_share_one_digest(self, registry, tmp_path):
        log_path = str(tmp_path / "provenance.jsonl")
        config = ServeConfig(
            max_batch=8, max_wait_ms=50,
            provenance_path=log_path, provenance_include_graph=False,
        )
        handle = start_server_thread(registry, config)
        try:
            def call(_):
                with ScoringClient(port=handle.port) as client:
                    return client.score(GRAPH, model="fraud")

            with ThreadPoolExecutor(max_workers=4) as pool:
                responses = list(pool.map(call, range(4)))
        finally:
            handle.stop()
        digests = {r["provenance"]["score_digest"] for r in responses}
        assert len(digests) == 1
        records = read_log(log_path)
        assert len(records) == 4  # one record per response, even when deduped
        assert {r["score_digest"] for r in records} == digests
        # Without include_graph the records need the graph supplied to replay.
        outcome = verify_record(records[0], registry.get("fraud").path)
        assert not outcome.ok and "graph" in outcome.reason
        outcome = verify_record(records[0], registry.get("fraud").path, graph=GRAPH)
        assert outcome.ok, outcome.describe()
