"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_example_graph
from repro.graph import Graph, Group


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_graph() -> Graph:
    """A 6-node graph: a triangle attached to a 3-node path, plus features."""
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]
    features = np.arange(12, dtype=float).reshape(6, 2)
    return Graph(6, edges, features, name="tiny")


@pytest.fixture
def path_group() -> Group:
    return Group.from_path([0, 1, 2, 3])


@pytest.fixture
def labelled_graph() -> Graph:
    """A 10-node graph with one ground-truth anomaly group (a 4-node path)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)]
    features = np.ones((10, 3))
    features[6:] += 2.0
    group = Group.from_path([6, 7, 8, 9])
    return Graph(10, edges, features, groups=[group], name="labelled")


@pytest.fixture(scope="session")
def example_graph() -> Graph:
    """The Fig. 3 / Fig. 8 example graph (session-scoped: generation is deterministic)."""
    return make_example_graph(seed=7)
