"""Artifact persistence: save/load roundtrips, manifests, JSON coercion."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import load_dataset
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.persist import (
    ARTIFACT_FORMAT_VERSION,
    PipelineState,
    config_from_dict,
    config_to_dict,
    to_native,
)
from repro.sampling import SamplerConfig

SCORE_TOLERANCE = 1e-8


def _tiny_config(seed: int = 3) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=6, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=60),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=12),
        max_anchors=15,
        seed=seed,
    )


# The three registry datasets of the roundtrip acceptance criterion, at
# scales small enough for the tier-1 budget.
ROUNDTRIP_DATASETS = [
    ("example", 1.0),
    ("simml", 0.04),
    ("cora-group", 0.04),
]


class TestToNative:
    def test_numpy_scalars_and_arrays(self):
        payload = {
            "f32": np.float32(0.5),
            "i64": np.int64(7),
            "bool": np.bool_(True),
            "arr": np.arange(3, dtype=np.int64),
            "nested": [np.float64(1.5), (np.int32(2),)],
        }
        native = to_native(payload)
        assert native == {"f32": 0.5, "i64": 7, "bool": True, "arr": [0, 1, 2], "nested": [1.5, [2]]}
        # Every leaf must be JSON-clean.
        assert json.loads(json.dumps(native)) == native

    def test_numpy_dict_keys_are_unwrapped(self):
        native = to_native({np.int64(3): np.float32(1.0)})
        assert native == {3: 1.0}
        json.dumps(native)  # must not raise

    def test_sets_become_sorted_lists(self):
        assert to_native({np.int64(2), np.int64(1)}) == [1, 2]

    def test_zero_dim_array(self):
        assert to_native(np.array(3.5)) == 3.5
        assert to_native({"v": np.array(7, dtype=np.int64)}) == {"v": 7}

    def test_result_json_dict_survives_numpy_inputs(self):
        from repro.core import GroupDetectionResult
        from repro.graph import Group

        result = GroupDetectionResult(
            candidate_groups=[Group.from_nodes(np.array([0, 1], dtype=np.int64))],
            scores=np.array([0.5], dtype=np.float32),
            threshold=np.float32(0.4),
            anomalous_groups=[Group.from_nodes([0, 1]).with_score(0.5)],
            anchor_nodes=np.array([0], dtype=np.int64),
        )
        payload = result.to_json_dict()
        json.dumps(payload)  # must not raise
        assert payload["threshold"] == pytest.approx(0.4)


class TestConfigRoundtrip:
    def test_config_dict_roundtrip_preserves_everything(self):
        config = _tiny_config(seed=9)
        clone = config_from_dict(config_to_dict(config))
        assert repr(clone) == repr(config)

    def test_config_dict_is_json_clean(self):
        payload = config_to_dict(_tiny_config())
        assert json.loads(json.dumps(payload)) == payload

    def test_roundtrip_preserves_reseed_semantics(self):
        config = _tiny_config(seed=3)
        clone = config_from_dict(config_to_dict(config))
        assert clone.derived_stage_seeds == config.derived_stage_seeds
        # A round-tripped config must still re-derive its unpinned stages.
        reseeded = clone.reseed(4)
        assert reseeded.sampler.seed != clone.sampler.seed


class TestArtifactRoundtrip:
    @pytest.mark.parametrize("name,scale", ROUNDTRIP_DATASETS)
    def test_saved_then_loaded_detect_matches_fit_detect(self, name, scale, tmp_path):
        graph = load_dataset(name, scale=scale, seed=1)
        detector = TPGrGAD(_tiny_config())
        in_memory = detector.fit_detect(graph)

        detector.save(tmp_path / "artifact")
        loaded = TPGrGAD.load(tmp_path / "artifact")
        replayed = loaded.detect_only(graph)

        assert replayed.n_candidates == in_memory.n_candidates
        assert np.abs(replayed.scores - in_memory.scores).max() <= SCORE_TOLERANCE
        assert abs(replayed.threshold - in_memory.threshold) <= SCORE_TOLERANCE
        assert [sorted(g.nodes) for g in replayed.candidate_groups] == [
            sorted(g.nodes) for g in in_memory.candidate_groups
        ]
        assert np.array_equal(replayed.anchor_nodes, in_memory.anchor_nodes)

    def test_detect_only_without_fit_or_artifact_raises(self, example_graph):
        with pytest.raises(RuntimeError, match="fit_detect"):
            TPGrGAD(_tiny_config()).detect_only(example_graph)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            TPGrGAD(_tiny_config()).save(tmp_path / "nope")

    def test_in_memory_detect_only_matches_fit_detect(self, example_graph):
        detector = TPGrGAD(_tiny_config())
        fitted = detector.fit_detect(example_graph)
        warm = detector.detect_only(example_graph)
        assert np.abs(warm.scores - fitted.scores).max() <= SCORE_TOLERANCE

    def test_warm_detect_on_new_graph(self, tmp_path, example_graph):
        from repro.datasets import make_example_graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        detector.save(tmp_path / "artifact")

        other = make_example_graph(seed=23)
        loaded = TPGrGAD.load(tmp_path / "artifact")
        result = loaded.detect_only(other)
        assert result.n_candidates > 0
        assert np.isfinite(result.scores).all()
        # Warm inference must not have trained anything.
        assert loaded.tpgcl is None or loaded.tpgcl.training_result.final_loss is None

    def test_resave_of_loaded_detector_preserves_original_state(self, tmp_path, example_graph):
        from repro.datasets import make_example_graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        detector.save(tmp_path / "first")

        loaded = TPGrGAD.load(tmp_path / "first")
        # Serving other graphs rebinds the live models but must not change
        # what a re-save persists: same weights, same fitted fingerprint.
        loaded.detect_only(make_example_graph(seed=23))
        loaded.save(tmp_path / "second")

        first = PipelineState.load(tmp_path / "first")
        second = PipelineState.load(tmp_path / "second")
        assert second.graph_fingerprint == first.graph_fingerprint == example_graph.fingerprint()
        for name, values in first.mhgae_state.items():
            assert np.array_equal(second.mhgae_state[name], values), name

    def test_serve_without_tpgcl_head_does_not_drop_trained_weights(self, tmp_path, example_graph):
        """A serve that skips the TPGCL head must not erase it from save()."""
        from repro.graph import Graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        assert detector.tpgcl is not None
        # A tiny graph yields too few candidates for the TPGCL head.
        rng = np.random.default_rng(0)
        tiny = Graph(
            3, [(0, 1), (1, 2)], features=rng.normal(size=(3, example_graph.n_features))
        )
        detector.detect_only(tiny)
        detector.save(tmp_path / "artifact")
        state = PipelineState.load(tmp_path / "artifact")
        assert state.tpgcl_state is not None

    def test_attach_without_state_keeps_trained_weights(self, example_graph):
        from repro.datasets import make_example_graph
        from repro.gae import MHGAEConfig, MultiHopGAE

        model = MultiHopGAE(MHGAEConfig(epochs=4, hidden_dim=16, embedding_dim=8))
        model.fit(example_graph)
        trained = model.state_dict()
        model.attach(make_example_graph(seed=23))
        for name, values in model.state_dict().items():
            assert np.array_equal(values, trained[name]), name

    def test_attach_unfitted_without_state_raises(self, example_graph):
        from repro.gae import MHGAEConfig, MultiHopGAE

        with pytest.raises(RuntimeError, match="attach"):
            MultiHopGAE(MHGAEConfig()).attach(example_graph)

    def test_cache_hit_refreshes_warm_serving_state(self, example_graph):
        """Rebinding a cached generation must invalidate a stale export."""
        from repro.datasets import make_example_graph

        other = make_example_graph(seed=23)
        detector = TPGrGAD(_tiny_config())
        oracle = detector.fit_detect(example_graph)
        detector.detect_only(example_graph)
        detector.fit_detect(other)
        detector.detect_only(other)   # caches other's export
        detector.fit_detect(example_graph)  # stage-cache hit rebinds models
        replay = detector.detect_only(example_graph)
        assert np.abs(replay.scores - oracle.scores).max() <= SCORE_TOLERANCE

    def test_save_after_detect_only_keeps_fitted_fingerprint(self, tmp_path, example_graph):
        from repro.datasets import make_example_graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        detector.detect_only(make_example_graph(seed=23))  # rebinds _graph
        detector.save(tmp_path / "artifact")
        state = PipelineState.load(tmp_path / "artifact")
        assert state.graph_fingerprint == example_graph.fingerprint()

    def test_refit_supersedes_loaded_state_on_save(self, tmp_path, example_graph):
        from repro.datasets import make_example_graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        detector.save(tmp_path / "first")

        other = make_example_graph(seed=23)
        loaded = TPGrGAD.load(tmp_path / "first")
        loaded.fit_detect(other)  # real training clears the loaded state
        loaded.save(tmp_path / "refit")
        assert PipelineState.load(tmp_path / "refit").graph_fingerprint == other.fingerprint()

    def test_feature_dimension_mismatch_rejected(self, tmp_path, example_graph):
        from repro.graph import Graph

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        detector.save(tmp_path / "artifact")
        loaded = TPGrGAD.load(tmp_path / "artifact")

        narrow = Graph(
            example_graph.n_nodes,
            example_graph.edge_index.T,
            features=np.zeros((example_graph.n_nodes, example_graph.n_features + 1)),
        )
        with pytest.raises(ValueError, match="features"):
            loaded.detect_only(narrow)


class TestManifest:
    @pytest.fixture()
    def saved(self, tmp_path, example_graph):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        path = tmp_path / "artifact"
        detector.save(path)
        return detector, path, example_graph

    def test_manifest_contents(self, saved):
        detector, path, graph = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert manifest["method"] == "TP-GrGAD"
        assert manifest["graph_fingerprint"] == graph.fingerprint()
        assert manifest["n_features"] == graph.n_features
        assert manifest["has_mhgae"] is True
        assert set(manifest["versions"]) == {"python", "numpy", "scipy"}
        assert config_from_dict(manifest["config"]).seed == detector.config.seed

    def test_arrays_are_exact_float64(self, saved):
        detector, path, _ = saved
        state = PipelineState.load(path)
        for name, values in detector.mhgae.state_dict().items():
            assert np.array_equal(state.mhgae_state[name], values), name

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PipelineState.load(tmp_path / "not-there")

    def test_future_format_version_rejected(self, saved, tmp_path):
        _, path, _ = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        with open(path / "manifest.json", "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="format_version"):
            PipelineState.load(path)

    def test_tampered_manifest_config_rejected_by_hash(self, saved):
        _, path, _ = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        manifest["config"]["contamination"] = 0.42  # hand edit, hash untouched
        with open(path / "manifest.json", "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="config_hash"):
            PipelineState.load(path)


class TestDtypeManifest:
    """Artifacts record their training dtype and defend it on load."""

    @pytest.fixture()
    def saved(self, tmp_path, example_graph):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        path = tmp_path / "artifact"
        detector.save(path)
        return detector, path, example_graph

    def test_manifest_records_stage_dtypes(self, saved):
        _, path, _ = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["dtype"] == {"mhgae": "float64", "tpgcl": "float64"}

    def test_float32_artifact_roundtrip(self, tmp_path, example_graph):
        detector = TPGrGAD(_tiny_config().accelerated())
        result = detector.fit_detect(example_graph)
        path = tmp_path / "artifact32"
        detector.save(path)

        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["dtype"] == {"mhgae": "float32", "tpgcl": "float32"}

        state = PipelineState.load(path)
        for values in state.mhgae_state.values():
            assert values.dtype == np.float32
        if state.tpgcl_state is not None:
            for values in state.tpgcl_state.values():
                assert values.dtype == np.float32

        warm = TPGrGAD.from_state(state).detect_only(example_graph)
        np.testing.assert_allclose(warm.scores, result.scores, atol=SCORE_TOLERANCE)

    def test_load_rejects_edited_dtype(self, saved):
        _, path, _ = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        manifest["dtype"]["mhgae"] = "float32"  # hand edit; config still float64
        with open(path / "manifest.json", "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="dtype"):
            PipelineState.load(path)

    def test_legacy_manifest_without_dtype_loads(self, saved):
        detector, path, example_graph = saved
        with open(path / "manifest.json") as handle:
            manifest = json.load(handle)
        del manifest["dtype"]  # pre-dtype artifacts have no such key
        with open(path / "manifest.json", "w") as handle:
            json.dump(manifest, handle)
        state = PipelineState.load(path)
        for name, values in detector.mhgae.state_dict().items():
            assert values.dtype == np.float64
            assert np.array_equal(state.mhgae_state[name], values), name


class TestContentHash:
    """One config identity for the stage cache, the manifest and the registry."""

    def test_hash_equality_implies_manifest_config_equality(self):
        first, second = _tiny_config(seed=9), _tiny_config(seed=9)
        assert first is not second
        assert first.content_hash() == second.content_hash()
        # The hash is taken over exactly the manifest's config dict, so
        # equal hashes mean byte-equal manifests (and vice versa).
        assert config_to_dict(first) == config_to_dict(second)

    def test_any_stage_knob_changes_the_hash(self):
        base = _tiny_config(seed=9)
        for other in (
            _tiny_config(seed=10),  # master seed (and derived stage seeds)
            TPGrGADConfig(contamination=0.3),
            TPGrGADConfig(detector="iforest"),
        ):
            assert base.content_hash() != other.content_hash()

    def test_hash_survives_artifact_roundtrip(self, tmp_path, example_graph):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        path = detector.save(tmp_path / "artifact")
        with open(Path(path) / "manifest.json") as handle:
            manifest = json.load(handle)
        loaded = TPGrGAD.load(path)
        assert (
            manifest["config_hash"]
            == loaded.config.content_hash()
            == detector.config.content_hash()
        )

    def test_stage_cache_is_keyed_by_content_hash(self, example_graph):
        # Two detector instances with *equal* (not identical) configs must
        # produce the same cache key — repr-keyed caching did that too,
        # but only content_hash also matches the manifest identity.
        first = TPGrGAD(_tiny_config(seed=9))
        second = TPGrGAD(_tiny_config(seed=9))
        assert first._cache_key(example_graph) == second._cache_key(example_graph)


class TestStreamWarmStart:
    def test_replay_with_artifact_warm_start(self, tmp_path):
        from repro.datasets.stream import make_event_stream
        from repro.stream import StreamConfig, replay_event_stream

        stream = make_event_stream(dataset="simml", scale=0.05, seed=2, n_ticks=4)
        config = _tiny_config()

        # Fit on the base snapshot and persist — the restart scenario.
        detector = TPGrGAD(config)
        detector.fit_detect(stream.base)
        artifact = tmp_path / "artifact"
        detector.save(artifact)

        summary = replay_event_stream(
            stream,
            stream_config=StreamConfig(refit_policy="never"),
            artifact=str(artifact),
        )
        assert summary.n_ticks == stream.n_ticks
        # The flush refit restores exact batch parity on the final snapshot.
        batch = TPGrGAD(_tiny_config()).fit_detect(stream.final)
        assert np.abs(summary.final_result.scores - batch.scores).max() <= SCORE_TOLERANCE

    def test_warm_start_from_fitted_detector_object(self, example_graph):
        """A fitted in-memory detector works as `artifact=` (no disk trip)."""
        from repro.stream.incremental import IncrementalTPGrGAD

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        incremental = IncrementalTPGrGAD(example_graph, artifact=detector)
        assert incremental.n_warm_starts == 1
        assert incremental.result.n_candidates > 0

    def test_warm_start_config_override_does_not_mutate_caller(self, example_graph):
        from repro.stream.incremental import IncrementalTPGrGAD

        detector = TPGrGAD(_tiny_config(seed=3))
        detector.fit_detect(example_graph)
        override = _tiny_config(seed=4)
        incremental = IncrementalTPGrGAD(example_graph, config=override, artifact=detector)
        # The stream adopts the override; the caller's detector keeps its own.
        assert incremental.config.seed == 4
        assert detector.config.seed == 3
        assert incremental.detector is not detector

    def test_warm_start_counts_no_initial_refit(self, tmp_path, example_graph):
        from repro.stream.incremental import IncrementalTPGrGAD

        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(example_graph)
        artifact = tmp_path / "artifact"
        detector.save(artifact)

        incremental = IncrementalTPGrGAD(example_graph, artifact=str(artifact))
        assert incremental.n_warm_starts == 1
        assert incremental.n_refits == 0
        assert incremental.result.n_candidates > 0
