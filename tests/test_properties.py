"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph, Group, graphsnn_weighted_adjacency, k_hop_matrix, normalized_adjacency
from repro.metrics import completeness_ratio, completeness_score, roc_auc_score
from repro.outlier.base import min_max_normalize
from repro.sampling import CandidateGroupSampler, SamplerConfig
from repro.tensor import Tensor


# ----------------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------------
def random_graph_strategy(max_nodes: int = 12):
    """Random small graphs as (n_nodes, edge list) tuples."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_nodes))
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)) if possible else []
        return n, edges

    return build()


node_sets = st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=10)


# ----------------------------------------------------------------------------
# Tensor autodiff properties
# ----------------------------------------------------------------------------
class TestTensorProperties:
    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.array(values), requires_grad=True)
        tensor.sum().backward()
        assert tensor.grad == pytest.approx(np.ones(len(values)))

    @given(
        st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6),
        st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, a, b):
        size = min(len(a), len(b))
        x, y = Tensor(np.array(a[:size])), Tensor(np.array(b[:size]))
        assert (x + y).numpy() == pytest.approx((y + x).numpy())

    @given(st.lists(st.floats(min_value=-4, max_value=4), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_output_in_unit_interval(self, values):
        out = Tensor(np.array(values)).sigmoid().numpy()
        assert (out > 0).all() and (out < 1).all()

    @given(st.lists(st.floats(min_value=0.1, max_value=5), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_exp_log_roundtrip(self, values):
        tensor = Tensor(np.array(values))
        assert tensor.log().exp().numpy() == pytest.approx(np.array(values), rel=1e-6)


# ----------------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------------
class TestGraphProperties:
    @given(random_graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_graph_construction_invariants(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 2)))
        graph.validate()
        assert graph.degree().sum() == 2 * graph.n_edges
        components = graph.connected_components()
        assert sum(len(c) for c in components) == n

    @given(random_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_normalized_adjacency_spectrum_bounded(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        eigenvalues = np.linalg.eigvalsh(normalized_adjacency(graph))
        assert eigenvalues.max() <= 1.0 + 1e-8
        assert eigenvalues.min() >= -1.0 - 1e-8

    @given(random_graph_strategy(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_k_hop_matrix_bounded_and_symmetric(self, spec, k):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        matrix = k_hop_matrix(graph, k)
        assert matrix == pytest.approx(matrix.T)
        assert matrix.max() <= 1.0 + 1e-12

    @given(random_graph_strategy())
    @settings(max_examples=20, deadline=None)
    def test_graphsnn_support_matches_adjacency(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        weighted = graphsnn_weighted_adjacency(graph)
        assert ((weighted > 0) == (graph.adjacency() > 0)).all()

    @given(random_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_subgraph_edge_count_never_increases(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        nodes = list(range(0, n, 2)) or [0]
        sub = graph.subgraph(nodes)
        assert sub.n_edges <= graph.n_edges
        assert sub.n_nodes == len(set(nodes))


# ----------------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------------
class TestMetricProperties:
    @given(node_sets, st.lists(node_sets, min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_completeness_score_bounds(self, truth_nodes, predictions):
        truth = Group.from_nodes(truth_nodes)
        predicted = [Group.from_nodes(nodes) for nodes in predictions]
        score = completeness_score(truth, predicted)
        assert 0.0 <= score <= 1.0

    @given(st.lists(node_sets, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_gives_cr_one(self, truth_sets):
        truth = [Group.from_nodes(nodes) for nodes in truth_sets]
        assert completeness_ratio(truth, truth) == pytest.approx(1.0)

    @given(st.lists(node_sets, min_size=1, max_size=4), st.lists(node_sets, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_cr_monotone_in_predictions(self, truth_sets, prediction_sets):
        """Adding predictions can never decrease CR."""
        truth = [Group.from_nodes(nodes) for nodes in truth_sets]
        predictions = [Group.from_nodes(nodes) for nodes in prediction_sets]
        partial = completeness_ratio(truth, predictions[:1])
        full = completeness_ratio(truth, predictions)
        assert full >= partial - 1e-12

    @given(st.lists(st.tuples(st.booleans(), st.floats(min_value=0, max_value=1)), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_roc_auc_bounds_and_complement(self, pairs):
        labels = np.array([p[0] for p in pairs])
        scores = np.array([p[1] for p in pairs])
        auc = roc_auc_score(labels, scores)
        assert 0.0 <= auc <= 1.0
        if labels.any() and not labels.all():
            assert roc_auc_score(~labels, scores) == pytest.approx(1.0 - auc, abs=1e-9)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_min_max_normalize_bounds(self, values):
        normalized = min_max_normalize(np.array(values))
        assert (normalized >= 0.0).all() and (normalized <= 1.0 + 1e-12).all()


# ----------------------------------------------------------------------------
# Candidate-group sampler invariants (Algorithm 1)
# ----------------------------------------------------------------------------
def _connected_via_own_edges(group: Group) -> bool:
    """Whether the group's internal edge set connects its node set."""
    if len(group) <= 1:
        return True
    adjacency = {node: set() for node in group.nodes}
    for u, v in group.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    start = next(iter(group.nodes))
    seen = {start}
    frontier = [start]
    while frontier:
        seen.update(adjacency[frontier.pop()] - seen)
        frontier = [n for n in seen if adjacency[n] - seen] if len(seen) < len(group) else []
    return seen == group.nodes


class TestSamplerProperties:
    @given(random_graph_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_groups_respect_bounds_and_graph_membership(self, spec, seed):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        anchors = sorted(set(range(0, n, 2)) | {n - 1})
        config = SamplerConfig(min_group_size=2, max_group_size=8, seed=seed)
        for group in CandidateGroupSampler(config).sample(graph, anchors):
            assert config.min_group_size <= len(group) <= config.max_group_size
            assert all(0 <= node < n for node in group.nodes)

    @given(random_graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_path_groups_are_connected(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        anchors = list(range(n))[:8]
        groups = CandidateGroupSampler(SamplerConfig(seed=1)).sample(graph, anchors)
        for group in groups:
            if group.label == "path":
                assert len(group.edges) == len(group) - 1
                assert _connected_via_own_edges(group)
            elif group.label in ("tree", "cycle"):
                assert _connected_via_own_edges(group)

    @given(random_graph_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_under_fixed_seed(self, spec, seed):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        anchors = list(range(n))[:7]
        config = SamplerConfig(max_anchor_pairs=8, max_candidates=10, seed=seed)
        first = CandidateGroupSampler(config).sample(graph, anchors)
        second = CandidateGroupSampler(config).sample(graph, anchors)
        assert [g.node_tuple() for g in first] == [g.node_tuple() for g in second]

    @given(random_graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_no_duplicate_node_sets(self, spec):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        groups = CandidateGroupSampler(SamplerConfig(seed=2)).sample(graph, list(range(min(n, 8))))
        node_tuples = [g.node_tuple() for g in groups]
        assert len(node_tuples) == len(set(node_tuples))

    @given(random_graph_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_matches_per_pair(self, spec, seed):
        n, edges = spec
        graph = Graph(n, edges, np.zeros((n, 1)))
        anchors = list(range(n))[:7]
        config = SamplerConfig(max_anchor_pairs=8, max_candidates=10, seed=seed, vectorized=True)
        from dataclasses import replace

        fast = CandidateGroupSampler(config).sample(graph, anchors)
        slow = CandidateGroupSampler(replace(config, vectorized=False)).sample(graph, anchors)
        assert [g.node_tuple() for g in fast] == [g.node_tuple() for g in slow]


# ----------------------------------------------------------------------------
# Group invariants
# ----------------------------------------------------------------------------
class TestGroupProperties:
    @given(node_sets, node_sets)
    @settings(max_examples=50, deadline=None)
    def test_jaccard_symmetric_and_bounded(self, a_nodes, b_nodes):
        a, b = Group.from_nodes(a_nodes), Group.from_nodes(b_nodes)
        assert a.jaccard(b) == pytest.approx(b.jaccard(a))
        assert 0.0 <= a.jaccard(b) <= 1.0

    @given(node_sets)
    @settings(max_examples=30, deadline=None)
    def test_self_jaccard_is_one(self, nodes):
        group = Group.from_nodes(nodes)
        assert group.jaccard(group) == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_path_group_edge_count(self, path):
        group = Group.from_path(path)
        assert len(group.edges) == len(path) - 1
