"""Benchmark J-1 — async job throughput through the durable store.

Pins the acceptance claims of the jobs subsystem:

1. **Throughput** — a burst of jobs submitted over HTTP drains through
   the claim → micro-batch → complete loop at ≥ ``REQUIRED_JOBS_PER_S``
   jobs/s end to end (submit to terminal state), warm ``detect_only``
   on the served artifact.
2. **Dedup** — duplicate submissions inside the burst are answered by
   the existing record: the store holds one row per distinct input and
   ``dedup_hits_total`` counts the collapsed resubmissions.
3. **Parity** — a drained job's stored response is bit-identical to the
   synchronous ``/score`` answer for the same graph on the same server.

Writes ``BENCH_jobs.json`` (the artifact the CI jobs job uploads); set
``BENCH_JOBS_JSON`` to redirect it.
"""

from __future__ import annotations

import os
import time

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.jobs import JobStore
from repro.persist import dump_json
from repro.sampling import SamplerConfig
from repro.serve import ModelRegistry, ScoringClient, ServeConfig, start_server_thread

GRAPH_POOL_SEEDS = (7, 11, 13, 17)   # 4 distinct graphs...
RESUBMITS_PER_GRAPH = 3              # ...submitted 3x each = 12 submissions
REQUIRED_JOBS_PER_S = 2.0


def _config() -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=1,
    )


def test_job_burst_throughput_dedup_and_parity(benchmark, tmp_path):
    graphs = [make_example_graph(seed=seed) for seed in GRAPH_POOL_SEEDS]
    detector = TPGrGAD(_config())
    detector.fit_detect(graphs[0])
    artifact = detector.save(tmp_path / "artifact")

    registry = ModelRegistry()
    registry.load("bench", artifact)
    store_path = str(tmp_path / "jobs.sqlite")
    handle = start_server_thread(
        registry,
        ServeConfig(
            max_batch=16,
            max_wait_ms=2,
            job_store_path=store_path,
            job_workers=2,
            job_claim_batch=8,
            job_poll_interval_s=0.01,
        ),
    )
    client = ScoringClient(port=handle.port, timeout=300)
    try:
        def burst() -> dict:
            start = time.perf_counter()
            job_ids = []
            for _ in range(RESUBMITS_PER_GRAPH):
                for graph in graphs:
                    job_ids.append(client.submit_job(graph)["job_id"])
            submit_seconds = time.perf_counter() - start
            for job_id in dict.fromkeys(job_ids):  # distinct, order kept
                client.wait_job(job_id, timeout=300, poll_interval=0.02)
            return {
                "job_ids": job_ids,
                "submit_seconds": submit_seconds,
                "elapsed_seconds": time.perf_counter() - start,
            }

        run = benchmark.pedantic(burst, rounds=1, iterations=1)
        n_submissions = len(run["job_ids"])
        n_distinct = len(set(run["job_ids"]))
        jobs_per_second = n_submissions / run["elapsed_seconds"]

        # --- dedup: one row per distinct input --------------------------
        assert n_distinct == len(GRAPH_POOL_SEEDS)
        jobs_metrics = client.metrics()["jobs"]
        assert jobs_metrics["deduplicated_total"] == n_submissions - n_distinct
        assert jobs_metrics["queue_depth"]["done"] == n_distinct

        # --- parity: stored result == synchronous /score ----------------
        sync = client.score(graphs[0])
        stored = client.job_result(run["job_ids"][0])["response"]
        assert stored["result"] == sync["result"]
        assert stored["config_hash"] == sync["config_hash"]

        payload = {
            "n_submissions": n_submissions,
            "n_distinct_jobs": n_distinct,
            "dedup_hits": n_submissions - n_distinct,
            "job_workers": 2,
            "submit_seconds": round(run["submit_seconds"], 3),
            "elapsed_seconds": round(run["elapsed_seconds"], 3),
            "jobs_per_second": round(jobs_per_second, 2),
            "required_jobs_per_second": REQUIRED_JOBS_PER_S,
            "wait_p95_ms": jobs_metrics["wait_p95_ms"],
            "run_p95_ms": jobs_metrics["run_p95_ms"],
            "queue_depth_final": jobs_metrics["queue_depth"],
            "parity": "bit-identical",
        }
        benchmark.extra_info.update(
            {key: value for key, value in payload.items() if not isinstance(value, dict)}
        )
        dump_json(os.environ.get("BENCH_JOBS_JSON", "BENCH_jobs.json"), payload)

        print(
            f"\n{n_submissions} submissions ({n_distinct} distinct) drained in "
            f"{run['elapsed_seconds']:.2f}s = {jobs_per_second:.1f} jobs/s "
            f"(wait p95 {jobs_metrics['wait_p95_ms']:.1f}ms, "
            f"run p95 {jobs_metrics['run_p95_ms']:.1f}ms)"
        )
        assert jobs_per_second >= REQUIRED_JOBS_PER_S, (
            f"expected >= {REQUIRED_JOBS_PER_S} jobs/s, got {jobs_per_second:.2f}"
        )
    finally:
        client.close()
        handle.stop(drain=True)

    # The drained store is intact and readable by a fresh connection —
    # what `python -m repro.jobs ls` does after the server exits.
    with JobStore(store_path) as store:
        stats = store.stats()
        assert stats["states"]["done"] == len(GRAPH_POOL_SEEDS)
        assert stats["dedup_hits_total"] == len(GRAPH_POOL_SEEDS) * (RESUBMITS_PER_GRAPH - 1)
