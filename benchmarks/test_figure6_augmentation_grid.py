"""Benchmark E-F6 — regenerate Figure 6 (augmentation-combination grids)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_figure6, run_figure6
from repro.experiments.figure6 import pba_ppa_rank


def test_figure6_pba_ppa_among_best_combinations(benchmark, quick_settings):
    records = benchmark.pedantic(
        run_figure6, args=(quick_settings,), kwargs={"datasets": ["ethereum-tsgn"]}, rounds=1, iterations=1
    )
    print("\n" + render_figure6(records))

    assert records, "figure 6 produced no grids"
    for record in records:
        grid = np.asarray(record["grid"])
        assert grid.shape == (5, 5)
        assert np.isfinite(grid).all()
        # Every augmentation pairing yields a working detector; the paper's
        # (PBA, PPA) cell is reported for comparison.  At benchmark scale
        # (one seed, few TPGCL epochs) the cell ordering is noise dominated —
        # see EXPERIMENTS.md — so the assertion is on grid health plus the
        # (PBA, PPA) cell not collapsing, not on the exact argmax.
        assert grid.mean() >= 0.3
        assert grid[0, 1] >= grid.mean() - 0.25  # rows/cols ordered PBA, PPA, ...
        print(f"(PBA, PPA) rank within grid: {pba_ppa_rank(record)} / 25")
