"""Benchmark E-F8 — regenerate Figures 3 & 8 (GAE variants on the example graph)."""

from __future__ import annotations

from repro.experiments import render_figure8, run_figure8


def test_figure8_mhgae_recovers_whole_groups(benchmark, quick_settings):
    records = benchmark.pedantic(run_figure8, args=(quick_settings,), rounds=1, iterations=1)
    print("\n" + render_figure8(records))

    by_method = {record["method"]: record for record in records}
    assert set(by_method) == {"DOMINANT", "DeepAE", "ComGA", "MH-GAE"}

    # Shape claims from Fig. 3 / Fig. 8: DOMINANT-style one-hop reconstruction
    # misses nodes deep inside the planted groups, while MH-GAE recovers them.
    assert by_method["MH-GAE"]["deep_recall"] >= by_method["DOMINANT"]["deep_recall"]
    assert by_method["MH-GAE"]["recall"] >= by_method["DOMINANT"]["recall"]
    assert by_method["MH-GAE"]["recall"] >= 0.6
    assert by_method["DOMINANT"]["deep_recall"] < 1.0
