"""Benchmark P-1 — sharded ``fit_detect_many`` on a 2-worker 8-graph batch.

Pins the acceptance claims of the parallel executor:

1. **Parity** — sharded results are bit-identical (≤1e-8, in practice
   exact) to the serial order, because every graph's pipeline is seeded
   from its config/batch index and never from worker identity.
2. **Speed** — with 2 workers the 8-graph batch completes ≥1.7× faster
   than the serial path.  The wall-clock assertion only applies where it
   is physically possible: hosts exposing ≥2 usable cores (the CI
   runners).  On a single-core host the benchmark still runs and pins
   parity, and records the measured ratio for the trajectory.
3. **Thread backend** — artifact-mode ``backend="thread"`` is
   bit-identical to the serial warm path and cheaper than the process
   backend for the same batch, because it shares one parent-loaded
   detector instead of paying fork plus a per-worker artifact load.
   The overhead claim holds on *any* core count (it is a fixed-cost
   comparison, not a parallelism one), so it is always enforced.

Both tests merge their fields into ``BENCH_parallel.json`` (the artifact
the CI parallel job uploads); set ``BENCH_PARALLEL_JSON`` to redirect it.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.parallel import ParallelExecutor, default_worker_count
from repro.persist import dump_json

N_GRAPHS = 8
N_WORKERS = 2
REQUIRED_SPEEDUP = 1.7


def _bench_path() -> str:
    return os.environ.get("BENCH_PARALLEL_JSON", "BENCH_parallel.json")


def _merge_bench(fields: dict) -> None:
    """Read-modify-write the pinned JSON so each test owns its keys."""
    path = _bench_path()
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update(fields)
    dump_json(path, payload)


def _config() -> TPGrGADConfig:
    # Heavier than TPGrGADConfig.fast(): each graph must cost enough that
    # the one-off pool fork/teardown (~0.3s) cannot mask a genuine 2x.
    from repro.gae import MHGAEConfig
    from repro.gcl import TPGCLConfig
    from repro.sampling import SamplerConfig

    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=200, hidden_dim=32, embedding_dim=16),
        sampler=SamplerConfig(max_candidates=120, max_anchor_pairs=150),
        tpgcl=TPGCLConfig(epochs=24, hidden_dim=32, embedding_dim=32, batch_size=24),
        max_anchors=25,
        seed=1,
    )


def test_sharded_batch_parity_and_speedup(benchmark):
    graphs = [make_example_graph(seed=seed) for seed in range(N_GRAPHS)]

    serial_detector = TPGrGAD(_config())
    serial_start = time.perf_counter()
    serial = serial_detector.fit_detect_many(graphs)
    serial_seconds = time.perf_counter() - serial_start

    executor = ParallelExecutor(_config(), n_workers=N_WORKERS)
    sharded_start = time.perf_counter()
    sharded = benchmark.pedantic(
        lambda: executor.fit_detect_many(graphs), rounds=1, iterations=1
    )
    sharded_seconds = time.perf_counter() - sharded_start

    # --- claim 1: bit-identical to the serial order ----------------------
    assert len(sharded) == len(serial)
    parity_max_abs_diff = 0.0
    for serial_result, sharded_result in zip(serial, sharded):
        assert sharded_result.n_candidates == serial_result.n_candidates
        score_diff = float(np.abs(sharded_result.scores - serial_result.scores).max())
        parity_max_abs_diff = max(
            parity_max_abs_diff,
            score_diff,
            abs(sharded_result.threshold - serial_result.threshold),
        )
        assert sharded_result.to_json_dict() == serial_result.to_json_dict()
    assert parity_max_abs_diff <= 1e-8

    # --- claim 2: ≥1.7x wall clock on 2 workers (needs 2 real cores) -----
    speedup = serial_seconds / max(sharded_seconds, 1e-12)
    usable_cores = default_worker_count()

    benchmark.extra_info["n_graphs"] = N_GRAPHS
    benchmark.extra_info["n_workers"] = N_WORKERS
    benchmark.extra_info["usable_cores"] = usable_cores
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["sharded_seconds"] = round(sharded_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    _merge_bench(
        {
            "n_graphs": N_GRAPHS,
            "n_workers": N_WORKERS,
            "usable_cores": usable_cores,
            "serial_seconds": round(serial_seconds, 3),
            "sharded_seconds": round(sharded_seconds, 3),
            "speedup": round(speedup, 2),
            "required_speedup": REQUIRED_SPEEDUP,
            "speedup_enforced": usable_cores >= N_WORKERS,
            "parity_max_abs_diff": parity_max_abs_diff,
        }
    )

    print(
        f"\nsharded {N_GRAPHS}-graph batch on {N_WORKERS} workers "
        f"({usable_cores} usable cores): serial {serial_seconds:.1f}s, "
        f"sharded {sharded_seconds:.1f}s ({speedup:.2f}x)"
    )
    if usable_cores >= N_WORKERS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x on {usable_cores} cores, got {speedup:.2f}x"
        )


def test_thread_backend_artifact_parity_and_overhead(benchmark, tmp_path):
    """Claim 3: thread backend = serial warm results, cheaper than processes."""
    fit_graph = make_example_graph(seed=1)
    graphs = [make_example_graph(seed=seed) for seed in range(N_GRAPHS)]

    config = _config()
    fitted = TPGrGAD(config)
    fitted.fit_detect(fit_graph)
    artifact = tmp_path / "artifact"
    fitted.save(artifact)

    warm = TPGrGAD.load(artifact)
    serial_start = time.perf_counter()
    serial = [warm.detect_only(graph) for graph in graphs]
    serial_seconds = time.perf_counter() - serial_start

    thread_executor = ParallelExecutor(
        config, n_workers=N_WORKERS, artifact=str(artifact), backend="thread"
    )
    thread_start = time.perf_counter()
    threaded = benchmark.pedantic(
        lambda: thread_executor.fit_detect_many(graphs), rounds=1, iterations=1
    )
    thread_seconds = time.perf_counter() - thread_start

    process_executor = ParallelExecutor(
        config, n_workers=N_WORKERS, artifact=str(artifact), backend="process"
    )
    process_start = time.perf_counter()
    process_executor.fit_detect_many(graphs)
    process_seconds = time.perf_counter() - process_start

    # --- parity: bit-identical to the serial warm loop -------------------
    assert len(threaded) == len(serial)
    for serial_result, thread_result in zip(serial, threaded):
        assert thread_result.to_json_dict() == serial_result.to_json_dict()

    # --- overhead: no fork, no per-worker artifact load ------------------
    thread_vs_process = process_seconds / max(thread_seconds, 1e-12)
    usable_cores = default_worker_count()

    benchmark.extra_info["thread_seconds"] = round(thread_seconds, 3)
    benchmark.extra_info["process_seconds"] = round(process_seconds, 3)
    benchmark.extra_info["thread_vs_process"] = round(thread_vs_process, 2)

    _merge_bench(
        {
            "thread_backend": {
                "n_graphs": N_GRAPHS,
                "n_workers": N_WORKERS,
                "usable_cores": usable_cores,
                "warm_serial_seconds": round(serial_seconds, 3),
                "thread_seconds": round(thread_seconds, 3),
                "process_seconds": round(process_seconds, 3),
                "thread_vs_process": round(thread_vs_process, 2),
                "thread_vs_process_enforced": True,
            }
        }
    )

    print(
        f"\nartifact-mode {N_GRAPHS}-graph batch ({usable_cores} usable cores): "
        f"warm serial {serial_seconds:.2f}s, threads {thread_seconds:.2f}s, "
        f"processes {process_seconds:.2f}s ({thread_vs_process:.2f}x)"
    )
    # Fixed-cost claim, enforced everywhere: the process pool pays fork +
    # N_WORKERS artifact loads that the shared-detector thread pool never
    # does, so threads must not be slower.
    assert thread_seconds <= process_seconds, (
        f"thread backend slower than process backend: "
        f"{thread_seconds:.2f}s vs {process_seconds:.2f}s"
    )
