"""Benchmark E-F7 — regenerate Figure 7 (t-SNE of TPGCL group embeddings)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_figure7, run_figure7


def test_figure7_embeddings_separate_anomalous_groups(benchmark, quick_settings):
    records = benchmark.pedantic(
        run_figure7, args=(quick_settings,), kwargs={"datasets": ["ethereum-tsgn", "simml"]}, rounds=1, iterations=1
    )
    print("\n" + render_figure7(records))

    assert records, "figure 7 produced no projections"
    separations = []
    for record in records:
        coordinates = np.asarray(record["coordinates"])
        labels = np.asarray(record["labels"], dtype=bool)
        assert coordinates.shape == (len(labels), 2)
        assert np.isfinite(coordinates).all()
        separations.append(record["separation"])
    # Shape claim from Fig. 7: embeddings of groups matching ground-truth
    # anomalies separate from normal groups (between/within ratio > 1 on
    # average across datasets).
    assert float(np.mean(separations)) > 1.0
