"""Benchmark SV-1 — micro-batched serving vs sequential request scoring.

Pins the acceptance claims of the online scoring service:

1. **Parity** — a response served through the micro-batcher carries
   exactly the scores of a direct ``detect_only`` on the same graph +
   artifact (compared at 1e-8; in practice identical JSON).
2. **Throughput** — a closed-loop load of 8 concurrent clients drawing
   requests from a small pool of distinct graphs completes ≥ 2× faster
   against the micro-batching server (``max_batch=16``) than against the
   sequential baseline (``max_batch=1``, every request scored
   individually).  The win is within-batch deduplication — concurrent
   requests for the same snapshot are scored once and fanned out — i.e.
   the serving-time analogue of the pipeline's per-graph stage cache.

Writes ``BENCH_serve.json`` (the artifact the CI serve job uploads);
set ``BENCH_SERVE_JSON`` to redirect it.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.persist import dump_json
from repro.sampling import SamplerConfig
from repro.serve import ModelRegistry, ScoringClient, ServeConfig, start_server_thread

CONCURRENCY = 8
REQUESTS_PER_CLIENT = 6
GRAPH_POOL_SEEDS = (7, 11)  # 2 distinct graphs → ideal dedup gain ≈ 8/2
REQUIRED_SPEEDUP = 2.0
SCORE_TOLERANCE = 1e-8


def _config() -> TPGrGADConfig:
    """Heavy enough that scoring dominates HTTP overhead (~25ms/score)."""
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=1,
    )


def _closed_loop(port: int, graphs) -> float:
    """8 clients, each scoring its request sequence; returns elapsed seconds."""
    barrier = threading.Barrier(CONCURRENCY)

    def worker(worker_index: int) -> None:
        with ScoringClient(port=port, timeout=300) as client:
            barrier.wait()
            for request_index in range(REQUESTS_PER_CLIENT):
                graph = graphs[(worker_index + request_index) % len(graphs)]
                client.score(graph)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        for outcome in [pool.submit(worker, i) for i in range(CONCURRENCY)]:
            outcome.result()
    return time.perf_counter() - start


def test_micro_batched_serving_speedup(tmp_path, benchmark):
    graphs = [make_example_graph(seed=seed) for seed in GRAPH_POOL_SEEDS]
    detector = TPGrGAD(_config())
    detector.fit_detect(graphs[0])
    artifact = detector.save(tmp_path / "artifact")
    n_requests = CONCURRENCY * REQUESTS_PER_CLIENT

    def run_mode(max_batch: int, max_wait_ms: float):
        registry = ModelRegistry()
        registry.load("bench", artifact)
        config = ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms, queue_size=256)
        with start_server_thread(registry, config) as handle:
            with ScoringClient(port=handle.port) as client:
                warm = [client.score(graph) for graph in graphs]  # warm + parity probe
                elapsed = _closed_loop(handle.port, graphs)
                metrics = client.metrics()
        return warm, elapsed, metrics

    # --- claim 1: parity with the direct, unbatched call ------------------
    loaded = TPGrGAD.load(artifact)
    parity_diff = 0.0
    sequential_warm, sequential_elapsed, sequential_metrics = run_mode(1, 0.0)
    batched_warm, batched_elapsed, batched_metrics = benchmark.pedantic(
        lambda: run_mode(16, 5.0), rounds=1, iterations=1
    )
    for graph, served_a, served_b in zip(graphs, sequential_warm, batched_warm):
        direct = loaded.detect_only(graph)
        for served in (served_a, served_b):
            scores = np.asarray(served["result"]["scores"], dtype=np.float64)
            assert scores.shape == direct.scores.shape
            parity_diff = max(parity_diff, float(np.abs(scores - direct.scores).max()))
    assert parity_diff <= SCORE_TOLERANCE

    # --- claim 2: batched serving ≥ 2× sequential request throughput ------
    sequential_rps = n_requests / sequential_elapsed
    batched_rps = n_requests / batched_elapsed
    speedup = batched_rps / sequential_rps
    # The batcher must actually have coalesced (and deduplicated) work —
    # a speedup from noise alone would not show these.
    assert batched_metrics["dedup_hits_total"] > 0
    assert batched_metrics["mean_batch_size"] > 1.5
    assert sequential_metrics["mean_batch_size"] == 1.0
    assert speedup >= REQUIRED_SPEEDUP, (
        f"micro-batched serving only reached {speedup:.2f}x sequential "
        f"({batched_rps:.1f} vs {sequential_rps:.1f} req/s)"
    )

    benchmark.extra_info["sequential_rps"] = round(sequential_rps, 1)
    benchmark.extra_info["batched_rps"] = round(batched_rps, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mean_batch_size"] = batched_metrics["mean_batch_size"]

    dump_json(
        os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json"),
        {
            "concurrency": CONCURRENCY,
            "n_requests": n_requests,
            "graph_pool": len(graphs),
            "sequential_rps": round(sequential_rps, 2),
            "batched_rps": round(batched_rps, 2),
            "speedup": round(speedup, 2),
            "required_speedup": REQUIRED_SPEEDUP,
            "parity_max_abs_diff": parity_diff,
            "sequential": {
                "scored_total": sequential_metrics["scored_total"],
                "mean_batch_size": sequential_metrics["mean_batch_size"],
                "p50_latency_ms": sequential_metrics["p50_latency_ms"],
                "p95_latency_ms": sequential_metrics["p95_latency_ms"],
            },
            "batched": {
                "scored_total": batched_metrics["scored_total"],
                "mean_batch_size": batched_metrics["mean_batch_size"],
                "batch_size_histogram": batched_metrics["batch_size_histogram"],
                "dedup_hits_total": batched_metrics["dedup_hits_total"],
                "p50_latency_ms": batched_metrics["p50_latency_ms"],
                "p95_latency_ms": batched_metrics["p95_latency_ms"],
                "shed_total": batched_metrics["shed_total"],
            },
        },
    )
