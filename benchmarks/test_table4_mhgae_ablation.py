"""Benchmark E-T4 — regenerate Table IV (MH-GAE reconstruction-target ablation)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table4, run_table4


def test_table4_multi_hop_targets_beat_plain_adjacency(benchmark, quick_settings):
    records = benchmark.pedantic(run_table4, args=(quick_settings,), rounds=1, iterations=1)
    print("\n" + render_table4(records))

    multi_hop_labels = ["A^5", "A^7", "A_tilde"]
    advantages = []
    for record in records:
        best_multi_hop = max(record[label] for label in multi_hop_labels)
        advantages.append(best_multi_hop - record["A"])
    # Shape claim from Table IV: higher-order targets (A^5 / A^7 / Ã) deliver
    # the best CR; plain A never wins on average across datasets.
    assert float(np.mean(advantages)) >= 0.0
    assert max(advantages) > 0.0
