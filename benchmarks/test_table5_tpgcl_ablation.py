"""Benchmark E-T5 — regenerate Table V (ablation of the TPGCL component)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table5, run_table5


def test_table5_removing_tpgcl_hurts_f1(benchmark, quick_settings):
    records = benchmark.pedantic(run_table5, args=(quick_settings,), rounds=1, iterations=1)
    print("\n" + render_table5(records))

    # Reproduction note (see EXPERIMENTS.md): on the scaled-down synthetic
    # substitutes, mean-attribute group representations are already highly
    # discriminative, so the *large* F1 collapse the paper reports for the
    # "w/o TPGCL" variant does not reproduce at benchmark scale.  The bench
    # asserts the claims that do hold: both variants produce a functioning
    # detector, and adding TPGCL keeps F1 in a healthy band rather than
    # destroying the pipeline.
    for record in records:
        assert record["with_tpgcl"] >= 0.35, f"full model collapsed on {record['dataset']}"
        assert record["without_tpgcl"] >= 0.0
    mean_full = float(np.mean([r["with_tpgcl"] for r in records]))
    assert mean_full >= 0.45
