"""Shared settings for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
dataset scale (see DESIGN.md for the substitution rationale) and asserts
the corresponding *shape* claim — who wins, which variant is best — rather
than absolute numbers.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings


@pytest.fixture(scope="session")
def quick_settings() -> ExperimentSettings:
    """Small-scale settings shared by all benchmark modules."""
    return ExperimentSettings(
        datasets=["ethereum-tsgn", "simml"],
        scale=0.1,
        seeds=(0,),
        mhgae_epochs=30,
        tpgcl_epochs=6,
        baseline_epochs=25,
        max_candidates=100,
    )


@pytest.fixture(scope="session")
def full_dataset_settings() -> ExperimentSettings:
    """Settings covering all five datasets (used by the cheap table benches)."""
    return ExperimentSettings(scale=0.1, seeds=(0,))
