"""Benchmark E-T2 — regenerate Table II (topology-pattern statistics)."""

from __future__ import annotations

from repro.experiments import render_table2, run_table2


def test_table2_topology_pattern_mix(benchmark, full_dataset_settings):
    records = benchmark.pedantic(run_table2, args=(full_dataset_settings,), rounds=1, iterations=1)
    print("\n" + render_table2(records))

    by_name = {r["dataset"]: r for r in records}
    aml, eth = by_name["AMLPublic"], by_name["Ethereum-TSGN"]
    # Shape claims from Table II: AMLPublic groups are almost all paths;
    # Ethereum-TSGN groups are dominated by trees and cycles.
    assert aml["path"] >= aml["total"] - 1
    assert aml["cycle"] == 0
    assert eth["tree"] + eth["cycle"] > eth["path"]
    assert aml["total"] == aml["path"] + aml["tree"] + aml["cycle"]
