"""Benchmark O-1 — disabled-tracer overhead on the 5k-node ``fit_detect``.

Pins the acceptance claim of the observability PR: with the default
:data:`repro.obs.NULL_TRACER` installed, the instrumentation threaded
through the pipeline/GAE/TPGCL hot paths costs **≤2 %** of end-to-end
``fit_detect`` wall time, and the result stays **bit-identical** to a
traced run (instrumentation touches no RNG).

The ≤2 % pin is computed as a *deterministic projection*, not a
wall-clock A/B ratio: two full fits of a stochastic training pipeline on
a shared CI runner differ by more than 2 % from timer noise alone, which
would make a ratio assertion flaky in both directions.  Instead the
benchmark measures the per-operation cost of a disabled trace point (a
``get_tracer()`` lookup + the reusable no-op span context + a no-op
counter add) in a tight microbenchmark, counts how many trace points one
``fit_detect`` actually executes (from the *enabled* run's span/counter
tallies), and projects::

    overhead_pct = null_op_seconds × trace_points / fit_seconds × 100

The raw wall-clock ratio is still recorded in the JSON for eyeballing.

Writes ``BENCH_obs.json`` (the artifact the CI obs job uploads and
schema-guards); set ``BENCH_OBS_JSON`` to redirect it.
"""

from __future__ import annotations

import os
import time

from repro.core import TPGrGAD, TPGrGADConfig
from repro.obs import NULL_TRACER, Tracer, canonical_json, get_tracer, use_tracer
from repro.persist import dump_json

from test_scaling_sparse import _synthetic_graph

MAX_OVERHEAD_PCT = 2.0
_MICRO_ITERS = 200_000


def _null_trace_point_seconds() -> float:
    """Per-operation cost of one disabled trace point (span ctx + add)."""
    tracer = get_tracer()
    assert tracer is NULL_TRACER
    start = time.perf_counter()
    for _ in range(_MICRO_ITERS):
        with get_tracer().span("bench.point") as span:
            span.add("counter")
    return (time.perf_counter() - start) / _MICRO_ITERS


def _trace_points(spans) -> int:
    """How many disabled-path operations one fit executes.

    Every span is one no-op context enter/exit; every unit counter
    increment (optimizer steps, cache hits) is one no-op ``add`` call.
    Value-carrying counters/attrs are only written when tracing is
    enabled, so they cost nothing on the disabled path — counting them
    anyway keeps the projection conservative.
    """
    points = 0
    for span in spans:
        points += 1
        points += int(sum(span.counters.values()))
        points += len(span.attrs)
    return points


def test_disabled_tracer_overhead_under_2pct(benchmark):
    graph = _synthetic_graph()
    config = TPGrGADConfig.fast(seed=1)

    assert get_tracer() is NULL_TRACER  # the default: no setup anywhere

    # Arm 1: disabled tracing (the production default), timed.
    start = time.perf_counter()
    disabled_result = benchmark.pedantic(
        lambda: TPGrGAD(config).fit_detect(graph), rounds=1, iterations=1
    )
    disabled_seconds = time.perf_counter() - start

    # Arm 2: full tracing, to count trace points and check bit-identity.
    tracer = Tracer()
    start = time.perf_counter()
    with use_tracer(tracer):
        enabled_result = TPGrGAD(config).fit_detect(graph)
    enabled_seconds = time.perf_counter() - start

    results_identical = canonical_json(enabled_result.to_json_dict()) == canonical_json(
        disabled_result.to_json_dict()
    )
    assert results_identical, "tracing must not perturb detection results"

    null_op_seconds = _null_trace_point_seconds()
    n_spans = len(tracer.spans)
    trace_points = _trace_points(tracer.spans)
    projected_pct = null_op_seconds * trace_points / max(disabled_seconds, 1e-9) * 100.0
    wall_ratio_pct = (enabled_seconds / max(disabled_seconds, 1e-9) - 1.0) * 100.0

    assert n_spans > 10, "instrumentation should cover the pipeline stages"
    assert projected_pct <= MAX_OVERHEAD_PCT, (
        f"disabled-tracer projection {projected_pct:.4f}% exceeds {MAX_OVERHEAD_PCT}% "
        f"({trace_points} trace points × {null_op_seconds * 1e9:.0f}ns "
        f"over {disabled_seconds:.2f}s)"
    )

    benchmark.extra_info["projected_overhead_pct"] = round(projected_pct, 4)
    benchmark.extra_info["trace_points"] = trace_points
    benchmark.extra_info["null_op_ns"] = round(null_op_seconds * 1e9, 1)

    dump_json(
        os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json"),
        {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "disabled_seconds": round(disabled_seconds, 3),
            "enabled_seconds": round(enabled_seconds, 3),
            "wall_ratio_pct": round(wall_ratio_pct, 2),
            "n_spans": n_spans,
            "trace_points": trace_points,
            "null_op_ns": round(null_op_seconds * 1e9, 1),
            "projected_overhead_pct": round(projected_pct, 4),
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "results_identical": results_identical,
        },
    )

    print(
        f"\ndisabled fit_detect: {disabled_seconds:.2f}s; "
        f"{trace_points} trace points at {null_op_seconds * 1e9:.0f}ns each -> "
        f"projected overhead {projected_pct:.4f}% (limit {MAX_OVERHEAD_PCT}%); "
        f"traced run identical: {results_identical}"
    )
