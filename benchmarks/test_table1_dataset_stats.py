"""Benchmark E-T1 — regenerate Table I (dataset statistics)."""

from __future__ import annotations

from repro.experiments import render_table1, run_table1


def test_table1_dataset_statistics(benchmark, full_dataset_settings):
    records = benchmark.pedantic(run_table1, args=(full_dataset_settings,), rounds=1, iterations=1)
    print("\n" + render_table1(records))

    assert len(records) == 5
    by_name = {r["dataset"]: r for r in records}
    # Shape claims from Table I: AMLPublic is the largest and sparsest graph,
    # simML has the smallest groups, AMLPublic the largest ones.
    assert by_name["AMLPublic"]["nodes"] == max(r["nodes"] for r in records)
    assert by_name["simML"]["avg_group_size"] == min(r["avg_group_size"] for r in records)
    assert by_name["AMLPublic"]["avg_group_size"] == max(r["avg_group_size"] for r in records)
    # Attribute dimensionality ordering: citation datasets are the widest.
    assert by_name["Cora-group"]["attributes"] > by_name["AMLPublic"]["attributes"]
