"""Extension ablations not in the paper: outlier-detector backend and anchor fraction.

DESIGN.md lists these as design choices worth ablating; they complement the
paper's Tables IV-V.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TPGrGAD
from repro.viz import format_table


@pytest.fixture(scope="module")
def eth_graph(quick_settings):
    return quick_settings.load("ethereum-tsgn", seed=0)


def test_ablation_outlier_backend(benchmark, quick_settings, eth_graph):
    """ECOD (the paper's choice) should be competitive with other backends."""

    def run():
        rows = {}
        for detector in ("ecod", "lof", "iforest", "suod"):
            config = quick_settings.pipeline_config(seed=0, detector=detector)
            report = TPGrGAD(config).fit_detect(eth_graph).evaluate(eth_graph)
            rows[detector] = report
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["detector", "CR", "F1", "AUC"],
        [[name, r.cr, r.f1, r.auc] for name, r in rows.items()],
        title="Ablation — outlier detector backend (Ethereum-TSGN)",
    ))
    aucs = {name: report.auc for name, report in rows.items()}
    assert aucs["ecod"] >= np.mean(list(aucs.values())) - 0.25
    assert all(report.cr > 0.2 for report in rows.values())


def test_ablation_anchor_fraction(benchmark, quick_settings, eth_graph):
    """The paper's top-10% anchor rule should beat a very small anchor budget."""

    def run():
        rows = {}
        for fraction in (0.02, 0.1, 0.2):
            config = quick_settings.pipeline_config(seed=0, anchor_fraction=fraction)
            rows[fraction] = TPGrGAD(config).fit_detect(eth_graph).evaluate(eth_graph)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["anchor fraction", "CR", "F1", "AUC"],
        [[fraction, r.cr, r.f1, r.auc] for fraction, r in rows.items()],
        title="Ablation — anchor fraction (Ethereum-TSGN)",
    ))
    assert rows[0.1].cr >= rows[0.02].cr - 0.05
