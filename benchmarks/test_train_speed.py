"""Benchmark T-1 — fast training engine on the 5k-node synthetic graph.

Pins the acceptance claim of the training-engine PR: end-to-end
``fit_detect`` in fast mode (float32 + batched view encoding + in-place
optimizers + fused loss) is **≥3× faster than the seed training loop**
on the ~5 000-node benchmark graph, while detecting the identical
anomalous groups.

Three arms are timed:

* ``seed_loop`` — float64 with the *pre-engine* MH-GAE training loop,
  kept verbatim below (unfused tape-built loss, allocating Adam), wired
  in by monkeypatching ``repro.core.pipeline.MultiHopGAE`` — the same
  kept-seed-baseline pattern as ``test_scaling_sparse.py``.
* ``float64`` — today's default path (fused loss + in-place optimizers,
  still bit-identical to the seed trajectory).
* ``float32`` — ``config.accelerated()``: float32 weights, block-diagonal
  batched TPGCL views, in-place everything.

Writes ``BENCH_train.json`` (the artifact the CI train job uploads);
set ``BENCH_TRAIN_JSON`` to redirect it.
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro.core.pipeline as pipeline_mod
from repro.core import TPGrGAD, TPGrGADConfig
from repro.gae import MultiHopGAE
from repro.gae.autoencoder import GAETrainingResult, _GAEModel
from repro.nn.optim import Optimizer
from repro.persist import dump_json
from repro.seeding import resolve_seed
from repro.tensor import Tensor

from test_scaling_sparse import _synthetic_graph

REQUIRED_SPEEDUP = 3.0


class _SeedAdam(Optimizer):
    """The pre-engine allocating Adam, kept verbatim as the timing baseline.

    The trajectory oracle lives in ``tests/test_train_engine.py``
    (``_ReferenceAdam``); change both or neither.
    """

    def __init__(self, parameters, lr=0.001, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _SeedMultiHopGAE(MultiHopGAE):
    """MH-GAE with the pre-engine training loop (unfused loss, allocating Adam)."""

    def fit(self, graph):
        config = self.config
        rng = np.random.default_rng(resolve_seed(config.seed))
        self._graph = graph
        self._structure_target = self._build_structure_target(graph)
        self._propagation = self._build_propagation(graph)
        self._scaled_features = self._scale_features(graph.features)
        self._model = _GAEModel(graph.n_features, graph.n_nodes, config, rng)
        features = Tensor(self._scaled_features)
        structure_target = Tensor(self._structure_target)
        optimizer = _SeedAdam(
            self._model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )
        lam = config.structure_weight
        self.training_result = GAETrainingResult()
        for _ in range(config.epochs):
            optimizer.zero_grad()
            z = self._model.encode(features, self._propagation)
            structure_hat = self._model.decode_structure(z)
            attribute_hat = self._model.decode_attributes(z)
            structure_loss = ((structure_hat - structure_target) ** 2).mean()
            attribute_loss = ((attribute_hat - features) ** 2).mean()
            loss = structure_loss * lam + attribute_loss * (1.0 - lam)
            loss.backward()
            optimizer.step()
            self.training_result.losses.append(loss.item())
        return self


def _groups(result):
    return sorted(tuple(sorted(group.nodes)) for group in result.anomalous_groups)


def test_fast_mode_at_least_3x_faster_than_seed_loop(benchmark):
    graph = _synthetic_graph()
    config = TPGrGADConfig.fast(seed=1)

    # Arm 1: the seed training loop (float64, unfused, allocating Adam).
    pipeline_mod.MultiHopGAE = _SeedMultiHopGAE
    try:
        start = time.perf_counter()
        seed_detector = TPGrGAD(config)
        seed_result = seed_detector.fit_detect(graph)
        seed_seconds = time.perf_counter() - start
    finally:
        pipeline_mod.MultiHopGAE = MultiHopGAE

    # Arm 2: today's float64 default (fused loss, in-place optimizers) —
    # bit-identical trajectory to the seed loop, so same groups by construction.
    start = time.perf_counter()
    f64_detector = TPGrGAD(config)
    f64_result = f64_detector.fit_detect(graph)
    f64_seconds = time.perf_counter() - start

    # Arm 3: fast mode (float32 + batched views + everything above).
    start = time.perf_counter()
    fast_result = benchmark.pedantic(
        lambda: TPGrGAD(config.accelerated()).fit_detect(graph), rounds=1, iterations=1
    )
    fast_seconds = time.perf_counter() - start

    assert _groups(f64_result) == _groups(seed_result)
    groups_identical = _groups(fast_result) == _groups(seed_result)
    assert groups_identical

    speedup_vs_seed = seed_seconds / max(fast_seconds, 1e-12)
    speedup_vs_float64 = f64_seconds / max(fast_seconds, 1e-12)
    epochs = config.mhgae.epochs

    benchmark.extra_info["seed_loop_seconds"] = round(seed_seconds, 3)
    benchmark.extra_info["float64_seconds"] = round(f64_seconds, 3)
    benchmark.extra_info["speedup_vs_seed"] = round(speedup_vs_seed, 2)
    benchmark.extra_info["speedup_vs_float64"] = round(speedup_vs_float64, 2)

    dump_json(
        os.environ.get("BENCH_TRAIN_JSON", "BENCH_train.json"),
        {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "mhgae_epochs": epochs,
            "seed_loop_seconds": round(seed_seconds, 3),
            "float64_seconds": round(f64_seconds, 3),
            "float32_seconds": round(fast_seconds, 3),
            "seed_loop_epoch_seconds": round(seed_seconds / epochs, 4),
            "float32_epoch_seconds": round(fast_seconds / epochs, 4),
            "speedup_vs_seed": round(speedup_vs_seed, 2),
            "speedup_vs_float64": round(speedup_vs_float64, 2),
            "required_speedup": REQUIRED_SPEEDUP,
            "groups_identical": groups_identical,
            "mhgae_epochs_run": {
                "seed_loop": seed_detector.mhgae.training_result.epochs_run,
                "float64": f64_detector.mhgae.training_result.epochs_run,
            },
        },
    )

    print(
        f"\nfit_detect on {graph.n_nodes} nodes: seed loop {seed_seconds:.1f}s, "
        f"float64 {f64_seconds:.1f}s, fast mode {fast_seconds:.1f}s "
        f"({speedup_vs_seed:.2f}x vs seed, {speedup_vs_float64:.2f}x vs float64)"
    )
    assert speedup_vs_seed >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP}x vs the seed loop, got {speedup_vs_seed:.2f}x"
    )
