"""Benchmark E-T3 — regenerate Table III (main CR / F1 / AUC comparison)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table3, run_table3


def test_table3_tpgrgad_beats_baselines(benchmark, quick_settings):
    records = benchmark.pedantic(run_table3, args=(quick_settings,), rounds=1, iterations=1)
    print("\n" + render_table3(records))

    for dataset in {r["dataset"] for r in records}:
        rows = [r for r in records if r["dataset"] == dataset]
        ours = next(r for r in rows if r["method"] == "TP-GrGAD")
        baselines = [r for r in rows if r["method"] != "TP-GrGAD"]
        best_baseline_cr = max(r["CR"] for r in baselines)
        mean_baseline_cr = float(np.mean([r["CR"] for r in baselines]))
        mean_baseline_auc = float(np.mean([r["AUC"] for r in baselines]))

        # Shape claims from Table III: TP-GrGAD attains the highest CR on
        # every dataset, by a clear margin over the baseline average, and
        # beats the baselines' average ranking quality.  (Individual baseline
        # AUCs can spike to 1.0 at benchmark scale because they emit only a
        # couple of groups, so the comparison uses the baseline average.)
        assert ours["CR"] >= best_baseline_cr, f"TP-GrGAD CR not best on {dataset}"
        assert ours["CR"] >= 1.1 * mean_baseline_cr
        assert ours["AUC"] >= mean_baseline_auc - 0.05
        # Baselines sit in the low-CR regime the paper reports (roughly 0.1-0.5).
        assert mean_baseline_cr < 0.55
