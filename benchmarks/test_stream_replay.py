"""Benchmark S-2 — streaming replay on a ~5k-node AMLSim transaction stream.

Pins the two acceptance claims of the streaming subsystem:

1. **Parity** — after the final event (and the stream flush), the
   incremental detector's scores match the batch ``fit_detect`` on the
   final snapshot to 1e-8 (they are in fact bit-identical: the flush runs
   the same seeded pipeline on the same graph).
2. **Speed** — an incremental dirty-region tick is ≥5× faster than a
   refit-per-tick (``refit_policy="always"``) tick on the same stream.

The run also writes ``BENCH_stream.json`` (events/sec, p50/p95 tick
latency, incremental-vs-refit speedup, cache counters) — the artifact the
CI benchmark job uploads; set ``BENCH_STREAM_JSON`` to redirect it.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets.stream import make_burst_stream
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.sampling import SamplerConfig
from repro.stream import StreamConfig, replay_event_stream, write_summary_json

# simML at scale 1.8 generates ≈5k accounts (2768 * 1.8 plus ring members).
SCALE = 1.8
N_TICKS = 6


def _config(seed: int = 1) -> TPGrGADConfig:
    """Small-epoch pipeline so a refit stays benchmarkable on 5k nodes."""
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=2, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=2, hidden_dim=16, embedding_dim=16, batch_size=8),
        max_anchors=20,
        seed=seed,
    )


def test_stream_replay_parity_and_speedup(benchmark):
    stream = make_burst_stream(dataset="simml", scale=SCALE, seed=1, n_ticks=N_TICKS)
    assert stream.final.n_nodes >= 4500, "benchmark is specified for a ~5k-node stream"

    incremental_summary = benchmark.pedantic(
        lambda: replay_event_stream(
            stream,
            _config(),
            StreamConfig(refit_policy="budget", drift_budget=0.5),
        ),
        rounds=1,
        iterations=1,
    )
    # The oracle's per-tick cost is a full batch refit — near constant per
    # tick — so two ticks (no flush) pin it without doubling the benchmark.
    refit_summary = replay_event_stream(
        stream.truncated(2), _config(), StreamConfig(refit_policy="always"), finalize=False
    )

    # --- claim 1: parity with the batch pipeline on the final snapshot ----
    batch = TPGrGAD(_config()).fit_detect(stream.final)
    assert incremental_summary.final_result.n_candidates == batch.n_candidates
    assert np.abs(incremental_summary.final_result.scores - batch.scores).max() <= 1e-8
    assert abs(incremental_summary.final_result.threshold - batch.threshold) <= 1e-8

    # --- claim 2: incremental re-scoring ≥5× faster than refit-per-tick ---
    incremental_ticks = [
        t.seconds for t in incremental_summary.ticks if t.mode == "incremental"
    ]
    refit_ticks = [t.seconds for t in refit_summary.ticks]
    assert incremental_ticks, "budget policy never ran an incremental tick"
    speedup = float(np.mean(refit_ticks)) / max(float(np.mean(incremental_ticks)), 1e-12)

    benchmark.extra_info["n_nodes"] = stream.final.n_nodes
    benchmark.extra_info["n_ticks"] = incremental_summary.n_ticks
    benchmark.extra_info["events_per_second"] = round(incremental_summary.events_per_second, 2)
    benchmark.extra_info["p50_tick_ms"] = round(incremental_summary.p50_latency * 1e3, 1)
    benchmark.extra_info["p95_tick_ms"] = round(incremental_summary.p95_latency * 1e3, 1)
    benchmark.extra_info["incremental_vs_refit_speedup"] = round(speedup, 1)
    benchmark.extra_info["pair_cache_hits"] = incremental_summary.pair_hits
    benchmark.extra_info["detection_lag_ticks"] = incremental_summary.detection_lag

    # --- claim 3: the summary schema splits refit vs incremental stats ---
    payload = incremental_summary.to_json_dict()
    for key in (
        "events_per_second",
        "incremental_events_per_second",
        "processing_seconds",
        "finalize_seconds",
        "p50_incremental_tick_latency_seconds",
        "p95_incremental_tick_latency_seconds",
        "p50_refit_tick_latency_seconds",
        "p95_refit_tick_latency_seconds",
    ):
        assert key in payload, f"BENCH_stream.json schema is missing '{key}'"
    # Refit ticks must no longer pollute the incremental percentiles.
    if incremental_summary.n_refits:
        assert (
            incremental_summary.p95_incremental_latency
            < incremental_summary.p50_refit_latency
        )
    # Lock the throughput denominator to processing time (ticks + flush):
    # a revert to the old ambient-wall-clock denominator (total_seconds,
    # which also counts event production) breaks this equality.
    assert incremental_summary.events_per_second == pytest.approx(
        incremental_summary.n_events / incremental_summary.processing_seconds,
        rel=1e-9,
    )

    refit_summary.name = f"{stream.name}-refit-per-tick"
    write_summary_json(
        os.environ.get("BENCH_STREAM_JSON", "BENCH_stream.json"),
        [incremental_summary, refit_summary],
        extra={"incremental_vs_refit_speedup": round(speedup, 2)},
    )

    print(
        f"\nstream replay on {stream.final.n_nodes} nodes / {incremental_summary.n_ticks} ticks: "
        f"incremental tick {np.mean(incremental_ticks) * 1e3:.0f}ms, "
        f"refit tick {np.mean(refit_ticks) * 1e3:.0f}ms ({speedup:.1f}x), "
        f"burst lag {incremental_summary.detection_lag}"
    )
    assert speedup >= 5.0
