"""Benchmark S-1 — sparse-first engine scaling on a ~5k-node synthetic graph.

Three claims are pinned here so later scaling PRs have a perf trajectory:

1. Building the GraphSNN weighted adjacency ``Ã`` with the vectorised
   sparse implementation is ≥10× faster than the seed per-edge Python loop
   (and bit-for-bit compatible, cf. ``tests/test_sparse_parity.py``).
2. The end-to-end ``fit_detect`` pipeline runs on a 5 000-node graph in one
   benchmark round; the dense-vs-sparse GCN propagation speedup of the
   anchor-localisation stage is recorded in the benchmark ``extra_info``.
3. The vectorized multi-source candidate-group sampler is ≥10× faster than
   the seed per-pair searches on the same graph, returning node-set-identical
   candidates (cf. ``tests/test_sampler_parity.py``).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.core import TPGrGAD, TPGrGADConfig
from repro.gae import GAEConfig, GraphAutoEncoder, MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.graph import Graph, graphsnn_weighted_adjacency
from repro.sampling import CandidateGroupSampler, SamplerConfig

N_NODES = 5000
AVG_DEGREE = 6
N_TRIANGLES = 600


def _synthetic_graph(
    n_nodes: int = N_NODES, avg_degree: int = AVG_DEGREE, n_triangles: int = N_TRIANGLES, seed: int = 0
) -> Graph:
    """Sparse random background plus planted triangles (so Ã has real overlaps)."""
    rng = np.random.default_rng(seed)
    n_edges = n_nodes * avg_degree // 2
    endpoints = rng.integers(0, n_nodes, size=(n_edges, 2))
    triples = rng.choice(n_nodes, size=3 * n_triangles, replace=False).reshape(-1, 3)
    triangles = np.vstack(
        [triples[:, [0, 1]], triples[:, [1, 2]], triples[:, [0, 2]]]
    )
    edges = np.vstack([endpoints, triangles])
    features = rng.normal(size=(n_nodes, 8))
    return Graph(n_nodes, edges, features=features, name="scaling-synthetic")


def _seed_graphsnn(graph: Graph, lam: float = 1.0) -> np.ndarray:
    """The pre-refactor O(E·d²) loop, kept verbatim as the timing baseline.

    A second copy lives in ``tests/test_sparse_parity.py`` as the numeric
    regression oracle; change both or neither.
    """
    n = graph.n_nodes
    weighted = np.zeros((n, n), dtype=np.float64)
    closed_neighborhoods = [set(graph.neighbors(v)) | {v} for v in range(n)]
    edge_lookup = {frozenset(e) for e in graph.edges}
    for u, v in graph.edges:
        overlap_nodes = closed_neighborhoods[u] & closed_neighborhoods[v]
        size = len(overlap_nodes)
        if size < 2:
            weight = 1.0
        else:
            overlap_edges = 0
            overlap_list = sorted(overlap_nodes)
            for i, a in enumerate(overlap_list):
                for b in overlap_list[i + 1 :]:
                    if frozenset((a, b)) in edge_lookup:
                        overlap_edges += 1
            weight = overlap_edges / (size * (size - 1)) * (size ** lam)
            if weight <= 0.0:
                weight = 1.0 / size
        weighted[u, v] = weight
        weighted[v, u] = weight
    if weighted.max() > 0:
        weighted = weighted / weighted.max()
    return weighted


def test_graphsnn_vectorized_at_least_10x_faster(benchmark):
    graph = _synthetic_graph()

    seed_seconds = np.inf
    for _ in range(2):  # best-of-2 so a contended CI runner can't inflate the baseline
        start = time.perf_counter()
        seed_result = _seed_graphsnn(graph)
        seed_seconds = min(seed_seconds, time.perf_counter() - start)

    # Time the engine-native CSR build; the dense layout exists only for the
    # sigmoid-decoder target and costs one extra toarray().
    fast_result = benchmark.pedantic(
        graphsnn_weighted_adjacency, args=(graph,), kwargs={"sparse": True}, rounds=5, iterations=1
    )
    fast_seconds = benchmark.stats.stats.mean

    assert np.abs(fast_result.toarray() - seed_result).max() <= 1e-8
    speedup = seed_seconds / max(fast_seconds, 1e-12)
    benchmark.extra_info["seed_seconds"] = round(seed_seconds, 4)
    benchmark.extra_info["speedup_vs_seed_loop"] = round(speedup, 1)
    print(f"\nGraphSNN Ã on {graph.n_nodes} nodes / {graph.n_edges} edges: "
          f"seed loop {seed_seconds:.3f}s, vectorized {fast_seconds:.4f}s "
          f"({speedup:.0f}x)")
    assert speedup >= 10.0


def test_sampler_vectorized_at_least_10x_faster(benchmark):
    """Old-vs-new candidate sampling on 5k nodes: timings + exact parity.

    Fresh samplers are used for every timed call so both strategies draw
    the identical rng-driven pair subsample (the persistent stream starts
    at ``config.seed``).
    """
    graph = _synthetic_graph()
    anchor_rng = np.random.default_rng(3)
    anchors = sorted(anchor_rng.choice(graph.n_nodes, size=40, replace=False).tolist())
    # All 780 pairs of the default 40-anchor budget: the max_anchor_pairs
    # cap exists to keep the per-pair stage affordable, the engine doesn't
    # need it.
    config = SamplerConfig(seed=3, max_anchor_pairs=1000)

    seed_seconds = np.inf
    for _ in range(2):  # best-of-2 so a contended CI runner can't inflate the baseline
        start = time.perf_counter()
        seed_groups = CandidateGroupSampler(replace(config, vectorized=False)).sample(graph, anchors)
        seed_seconds = min(seed_seconds, time.perf_counter() - start)

    fast_groups = benchmark.pedantic(
        lambda: CandidateGroupSampler(config).sample(graph, anchors), rounds=3, iterations=1
    )
    fast_seconds = benchmark.stats.stats.mean

    assert [g.node_tuple() for g in fast_groups] == [g.node_tuple() for g in seed_groups]
    speedup = seed_seconds / max(fast_seconds, 1e-12)
    benchmark.extra_info["n_candidates"] = len(fast_groups)
    benchmark.extra_info["seed_sampler_seconds"] = round(seed_seconds, 4)
    benchmark.extra_info["speedup_vs_per_pair_searches"] = round(speedup, 1)
    print(f"\nCandidate sampling on {graph.n_nodes} nodes / {len(anchors)} anchors: "
          f"per-pair {seed_seconds:.3f}s, vectorized {fast_seconds:.4f}s "
          f"({speedup:.0f}x, {len(fast_groups)} candidates)")
    assert speedup >= 10.0


def test_fit_detect_wall_clock_on_5k_graph(benchmark):
    graph = _synthetic_graph()
    config = TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=2, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=20, max_anchor_pairs=25),
        tpgcl=TPGCLConfig(epochs=2, hidden_dim=16, embedding_dim=16, batch_size=8),
        max_anchors=10,
        seed=1,
    )

    result = benchmark.pedantic(
        lambda: TPGrGAD(config).fit_detect(graph), rounds=1, iterations=1
    )
    assert result.n_candidates >= 0
    assert result.node_scores is not None and result.node_scores.shape == (graph.n_nodes,)

    # Record the dense-vs-sparse propagation speedup of the stage-1 GAE so
    # later PRs can track the trajectory (2 epochs each, same seed).
    # Best-of-2, interleaved: a single sample per variant is at the mercy
    # of scheduler/allocator noise from earlier benchmarks in the same
    # process, which flakes the ratio floor on loaded single-core boxes.
    timings = {"sparse": float("inf"), "dense": float("inf")}
    for _ in range(2):
        for label, sparse in (("sparse", True), ("dense", False)):
            gae = GraphAutoEncoder(
                GAEConfig(epochs=2, hidden_dim=16, embedding_dim=8, sparse_propagation=sparse)
            )
            start = time.perf_counter()
            gae.fit(graph)
            timings[label] = min(timings[label], time.perf_counter() - start)
    speedup = timings["dense"] / max(timings["sparse"], 1e-12)
    benchmark.extra_info["gae_fit_dense_seconds"] = round(timings["dense"], 3)
    benchmark.extra_info["gae_fit_sparse_seconds"] = round(timings["sparse"], 3)
    benchmark.extra_info["gae_fit_sparse_speedup"] = round(speedup, 2)
    print(f"\nGAE fit on {graph.n_nodes} nodes: dense {timings['dense']:.2f}s, "
          f"sparse {timings['sparse']:.2f}s ({speedup:.1f}x)")
    # The fit is decoder-dominated (sigmoid(Z Zᵀ) is inherently dense), so
    # the recorded speedup is modest; the floor only guards against sparse
    # propagation regressing the hot path outright.
    assert speedup >= 0.75
