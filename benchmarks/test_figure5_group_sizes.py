"""Benchmark E-F5 — regenerate Figure 5 (average detected group size per method)."""

from __future__ import annotations

import numpy as np

from repro.experiments import render_figure5, run_figure5


def test_figure5_tpgrgad_group_sizes_track_ground_truth(benchmark, quick_settings):
    records = benchmark.pedantic(run_figure5, args=(quick_settings,), rounds=1, iterations=1)
    print("\n" + render_figure5(records))

    for record in records:
        truth = record["Ground Truth"]
        ours = record["TP-GrGAD"]
        baseline_sizes = [
            value
            for key, value in record.items()
            if key not in ("dataset", "Ground Truth", "TP-GrGAD") and isinstance(value, float)
        ]
        # Shape claims from Fig. 5: TP-GrGAD's detected group size is closer
        # to the ground-truth average than the typical baseline's, and the
        # N-GAD/Sub-GAD baselines skew small.
        ours_gap = abs(ours - truth)
        mean_baseline_gap = float(np.mean([abs(size - truth) for size in baseline_sizes]))
        assert ours_gap <= mean_baseline_gap + 1.0
        # Baselines either fragment groups into small pieces or blur them
        # into one oversized component (DeepFD) — so the typical baseline is
        # further from the ground-truth size than TP-GrGAD is.
        assert min(baseline_sizes) <= truth + 1.0
