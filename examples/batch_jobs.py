"""Async batch jobs quickstart: durable scoring through ``POST /jobs``.

Trains a small TP-GrGAD pipeline, boots the scoring server with a
sqlite-backed job store, and walks the full async lifecycle: submit a
batch of jobs (with duplicate submissions deduplicated server-side),
poll to completion, fetch stored results that are bit-identical to the
synchronous ``/score`` path, cancel a queued job, and read the job
metrics.  Everything runs headless in one process; against a real
deployment you would start the server with::

    python -m repro.serve --artifact fraud=artifacts/fraud \\
        --job-store jobs.sqlite --job-workers 2 --port 8000

and inspect the store offline with ``python -m repro.jobs ls --store
jobs.sqlite``.

Run with::

    python examples/batch_jobs.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.jobs import JobStore
from repro.serve import ModelRegistry, ScoringClient, ServeConfig, start_server_thread


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-jobs-"))
    print("Training a model artifact (fast config)...")
    detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
    detector.fit_detect(make_example_graph(seed=7))
    artifact = detector.save(workdir / "fraud")

    registry = ModelRegistry()
    registry.load("fraud", artifact)
    store_path = workdir / "jobs.sqlite"
    config = ServeConfig(
        max_batch=16,
        max_wait_ms=5,
        job_store_path=str(store_path),
        job_workers=2,
        job_poll_interval_s=0.01,
    )
    with start_server_thread(registry, config) as handle:
        print(f"Scoring server listening on http://{handle.host}:{handle.port}\n")
        with ScoringClient(port=handle.port, api_key="analytics-team") as client:
            graphs = [make_example_graph(seed=seed) for seed in (7, 11, 13)]

            # Submit each graph twice: the second submission of identical
            # work returns the existing record instead of queueing again.
            job_ids = []
            for graph in graphs * 2:
                accepted = client.submit_job(graph, model="fraud")
                job_ids.append(accepted["job_id"])
                print(
                    f"POST /jobs -> {accepted['job_id']} state={accepted['state']} "
                    f"deduplicated={accepted['deduplicated']}"
                )
            distinct = list(dict.fromkeys(job_ids))
            print(f"\n{len(job_ids)} submissions -> {len(distinct)} distinct jobs")

            # Poll the first job to completion and compare against the
            # synchronous path: the stored response is bit-identical.
            result = client.wait_job(distinct[0], timeout=120)
            sync = client.score(graphs[0], model="fraud")
            print(
                f"\njob {distinct[0]} done: "
                f"{len(result['response']['result']['scores'])} group scores, "
                f"bit-identical to sync /score: "
                f"{result['response']['result'] == sync['result']}"
            )
            for job_id in distinct[1:]:
                client.wait_job(job_id, timeout=120)

            # A queued job can be withdrawn; terminal jobs are history.
            extra = client.submit_job(make_example_graph(seed=17), model="fraud")
            try:
                cancelled = client.cancel_job(extra["job_id"])
                print(f"cancelled queued job {cancelled['job_id']}")
            except Exception:
                # The worker pool may have raced us to it — equally fine.
                client.wait_job(extra["job_id"], timeout=120)
                print(f"job {extra['job_id']} completed before cancel landed")

            listing = client.jobs(tenant="analytics-team")
            print(f"\nGET /jobs?tenant=analytics-team -> {len(listing['jobs'])} jobs, "
                  f"counts={listing['counts']}")
            jobs_metrics = client.metrics()["jobs"]
            print("job metrics:")
            print(f"  submitted/deduplicated: {jobs_metrics['submitted_total']} / "
                  f"{jobs_metrics['deduplicated_total']}")
            print(f"  queue depth:            {jobs_metrics['queue_depth']}")
            print(f"  wait/run p95 ms:        {jobs_metrics['wait_p95_ms']} / "
                  f"{jobs_metrics['run_p95_ms']}")
        handle.stop(drain=True)

    # The store outlives the server: what `python -m repro.jobs ls` reads.
    with JobStore(store_path) as store:
        stats = store.stats()
        print(f"\nstore after shutdown: {stats['states']} "
              f"(dedup hits {stats['dedup_hits_total']})")
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
