"""Money-laundering group detection on an AMLSim-style transaction graph.

This is the scenario motivating the paper: laundering rings (fan-in /
fan-out, cycles, layered chains) hidden inside a sparse transaction graph.
The script runs TP-GrGAD and the DOMINANT baseline side by side and shows
why node-level detection fragments the rings while group-level detection
recovers them whole.

Run with::

    python examples/money_laundering_detection.py
"""

from __future__ import annotations

from repro.baselines import BaselineConfig, Dominant
from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_simml
from repro.viz import format_table


def main() -> None:
    graph = make_simml(scale=0.15, seed=3)
    print(f"simML transaction graph: {graph.n_nodes} accounts, {graph.n_edges} transactions")
    print(f"Planted laundering rings: {graph.n_groups} (avg size {graph.average_group_size():.1f})")
    typologies = {}
    for group in graph.groups:
        typologies[group.label] = typologies.get(group.label, 0) + 1
    print(f"Ring topologies: {typologies}\n")

    print("Running TP-GrGAD...")
    ours = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(graph)
    ours_report = ours.evaluate(graph)

    print("Running DOMINANT (node-level baseline, grouped by connected components)...")
    baseline = Dominant(BaselineConfig(epochs=40, seed=1)).fit_detect(graph)
    baseline_report = baseline.evaluate(graph)

    print("\n" + format_table(
        ["method", "CR", "F1", "AUC", "flagged groups", "avg group size"],
        [
            ["TP-GrGAD", ours_report.cr, ours_report.f1, ours_report.auc, ours.n_anomalous, ours.average_anomalous_size()],
            ["DOMINANT", baseline_report.cr, baseline_report.f1, baseline_report.auc, baseline.n_anomalous, baseline.average_anomalous_size()],
            ["ground truth", 1.0, 1.0, 1.0, graph.n_groups, graph.average_group_size()],
        ],
        title="Laundering-ring detection comparison",
    ))

    print("\nHighest-scoring laundering ring candidates (TP-GrGAD):")
    for group in ours.top_groups(3):
        print(f"  score={group.score:.3f} accounts={sorted(group.nodes)}")


if __name__ == "__main__":
    main()
