"""Phishing-group detection on an Ethereum-TSGN-style transaction graph.

Phishing rings in Ethereum show up as trees (one scammer fanning out to
victims) and cycles (wash-trading style loops).  The script inspects the
topology patterns of the detected groups and compares them with the
ground-truth pattern mix (Table II of the paper).

Run with::

    python examples/phishing_detection.py
"""

from __future__ import annotations

from collections import Counter

from repro.augment import classify_group_pattern
from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_ethereum_tsgn
from repro.viz import format_table


def main() -> None:
    graph = make_ethereum_tsgn(scale=0.2, seed=5)
    print(f"Ethereum transaction graph: {graph.n_nodes} accounts, {graph.n_edges} transactions")
    truth_patterns = Counter(classify_group_pattern(graph.group_subgraph(g)) for g in graph.groups)
    print(f"Ground-truth phishing groups: {graph.n_groups}, pattern mix {dict(truth_patterns)}\n")

    detector = TPGrGAD(TPGrGADConfig.fast(seed=2))
    result = detector.fit_detect(graph)
    report = result.evaluate(graph)

    detected_patterns = Counter(
        classify_group_pattern(graph.group_subgraph(group)) for group in result.anomalous_groups
    )

    print(format_table(
        ["quantity", "value"],
        [
            ["candidate groups", result.n_candidates],
            ["flagged groups", result.n_anomalous],
            ["Completeness Ratio", report.cr],
            ["group F1", report.f1],
            ["group AUC", report.auc],
        ],
        title="Phishing-group detection (TP-GrGAD)",
    ))
    print(f"\nPattern mix of flagged groups:  {dict(detected_patterns)}")
    print(f"Pattern mix of true groups:     {dict(truth_patterns)}")
    print("\nTrees and cycles dominating both mixes mirrors Table II of the paper.")


if __name__ == "__main__":
    main()
