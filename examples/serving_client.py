"""Serving quickstart: score graphs over HTTP against a model registry.

Trains two small TP-GrGAD pipelines, publishes them as artifacts, boots
the micro-batching scoring server in-process, and then acts as a client:
concurrent ``/score`` requests (which the server coalesces into one
pipeline batch), a model hot-swap with zero downtime, and a ``/metrics``
read-out.  Everything runs headless in one process; against a real
deployment you would start the server with::

    python -m repro.serve --artifact fraud-v1=artifacts/fraud-v1 --port 8000

and point :class:`repro.serve.ScoringClient` (or plain ``curl``) at it.

Run with::

    python examples/serving_client.py
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.serve import ModelRegistry, ScoringClient, ServeConfig, start_server_thread


def train_artifact(path: Path, seed: int) -> str:
    """Fit a fast pipeline on the example graph and persist it."""
    detector = TPGrGAD(TPGrGADConfig.fast(seed=seed))
    detector.fit_detect(make_example_graph(seed=7))
    return detector.save(path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    print("Training two model versions (fast config)...")
    artifact_v1 = train_artifact(workdir / "fraud-v1", seed=1)
    artifact_v2 = train_artifact(workdir / "fraud-v2", seed=2)

    registry = ModelRegistry()
    registry.load("fraud", artifact_v1)
    with start_server_thread(registry, ServeConfig(max_batch=16, max_wait_ms=5)) as handle:
        print(f"Scoring server listening on http://{handle.host}:{handle.port}\n")
        with ScoringClient(port=handle.port) as client:
            print("GET /healthz ->", client.healthz())

            # Eight concurrent clients scoring two distinct snapshots: the
            # server coalesces them into one micro-batch and scores each
            # distinct graph once.
            graphs = [make_example_graph(seed=seed) for seed in (7, 11)]

            def score(index: int) -> dict:
                with ScoringClient(port=handle.port) as worker:
                    return worker.score(graphs[index % len(graphs)], model="fraud")

            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(score, range(8)))
            for index, response in enumerate(responses[:2]):
                result = response["result"]
                print(
                    f"request {index}: model={response['model']} v{response['version']} "
                    f"candidates={len(result['scores'])} "
                    f"anomalous={len(result['anomalous_groups'])} "
                    f"(rode a batch of {response['batch']['size']}, "
                    f"{response['batch']['n_unique']} scored)"
                )

            # Hot-swap to the retrained artifact — in-flight requests keep
            # the version they started with; new ones get v2.
            swapped = client.load_model("fraud", artifact_v2)
            print(f"\nhot-swapped 'fraud' to {swapped['path']} (now v{swapped['version']})")
            response = client.score(graphs[0], model="fraud")
            print(f"post-swap score served by v{response['version']} "
                  f"(config {response['config_hash'][:12]})")

            metrics = client.metrics()
            print("\nGET /metrics ->")
            print(f"  scored_total:        {metrics['scored_total']}")
            print(f"  mean_batch_size:     {metrics['mean_batch_size']}")
            print(f"  batch_size_histogram:{metrics['batch_size_histogram']}")
            print(f"  dedup_hits_total:    {metrics['dedup_hits_total']}")
            print(f"  p50/p95 latency ms:  {metrics['p50_latency_ms']} / {metrics['p95_latency_ms']}")
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
