"""Quickstart: detect anomaly groups in small attributed graphs.

Runs the full TP-GrGAD pipeline (MH-GAE anchor localization, candidate
group sampling, TPGCL contrastive embedding, ECOD scoring) on two seeded
variants of the paper's illustrative example graph through the batched
``fit_detect_many`` API, and prints the detected groups next to the
planted ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph


def main() -> None:
    graphs = [make_example_graph(seed=seed) for seed in (7, 11)]
    detector = TPGrGAD(TPGrGADConfig.fast(seed=1))

    # One call scores the whole batch; each graph is still scored
    # independently, and repeated graphs would hit the stage cache.
    results = detector.fit_detect_many(graphs)

    for graph, result in zip(graphs, results):
        print(f"\n=== {graph.name}: {graph.n_nodes} nodes, {graph.n_edges} edges, "
              f"{graph.n_groups} planted anomaly groups (avg size {graph.average_group_size():.1f})")
        print(f"Anchor nodes selected: {len(result.anchor_nodes)}")
        print(f"Candidate groups sampled: {result.n_candidates}")
        print(f"Groups flagged as anomalous (score >= {result.threshold:.3f}): {result.n_anomalous}")

        print("Top 5 groups by anomaly score:")
        for group in result.top_groups(5):
            members = ", ".join(str(node) for node in sorted(group.nodes)[:8])
            suffix = "..." if len(group) > 8 else ""
            print(f"  score={group.score:.3f} size={len(group):2d} nodes=[{members}{suffix}]")

        report = result.evaluate(graph)
        print("Evaluation against the planted groups:")
        print(f"  Completeness Ratio (CR): {report.cr:.2f}")
        print(f"  Group-level F1:          {report.f1:.2f}")
        print(f"  Group-level AUC:         {report.auc:.2f}")


if __name__ == "__main__":
    main()
