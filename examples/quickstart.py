"""Quickstart: detect anomaly groups in a small attributed graph.

Runs the full TP-GrGAD pipeline (MH-GAE anchor localization, candidate
group sampling, TPGCL contrastive embedding, ECOD scoring) on the paper's
illustrative example graph and prints the detected groups next to the
planted ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph


def main() -> None:
    graph = make_example_graph(seed=7)
    print(f"Graph: {graph.n_nodes} nodes, {graph.n_edges} edges, "
          f"{graph.n_groups} planted anomaly groups (avg size {graph.average_group_size():.1f})")

    detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
    result = detector.fit_detect(graph)

    print(f"\nAnchor nodes selected: {len(result.anchor_nodes)}")
    print(f"Candidate groups sampled: {result.n_candidates}")
    print(f"Groups flagged as anomalous (score >= {result.threshold:.3f}): {result.n_anomalous}")

    print("\nTop 5 groups by anomaly score:")
    for group in result.top_groups(5):
        members = ", ".join(str(node) for node in sorted(group.nodes)[:8])
        suffix = "..." if len(group) > 8 else ""
        print(f"  score={group.score:.3f} size={len(group):2d} nodes=[{members}{suffix}]")

    report = result.evaluate(graph)
    print("\nEvaluation against the planted groups:")
    print(f"  Completeness Ratio (CR): {report.cr:.2f}")
    print(f"  Group-level F1:          {report.f1:.2f}")
    print(f"  Group-level AUC:         {report.auc:.2f}")


if __name__ == "__main__":
    main()
