"""Using TP-GrGAD on your own graph data.

Shows how to build a :class:`repro.graph.Graph` from a plain edge list and
feature matrix (e.g. loaded from CSV), run the detector, and work with the
returned groups — the workflow a downstream user would follow on real
transaction data.

Run with::

    python examples/custom_graph.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TPGrGAD, TPGrGADConfig
from repro.graph import Graph


def build_my_graph() -> Graph:
    """Stand-in for 'load your own data here'.

    We create a small social/transaction network by hand: 60 normal
    accounts transacting randomly, plus a suspicious 6-account chain whose
    activity profile differs from everyone else's.
    """
    rng = np.random.default_rng(42)
    n_normal = 60
    edges = []
    for node in range(1, n_normal):
        edges.append((node, int(rng.integers(0, node))))       # connected backbone
    for _ in range(60):
        u, v = rng.integers(0, n_normal, size=2)
        if u != v:
            edges.append((int(u), int(v)))

    features = rng.normal(loc=1.0, scale=0.3, size=(n_normal, 5))

    # A suspicious chain of 6 new accounts relaying funds to each other.
    # Each account's activity profile deviates from the norm in its own way
    # (burst amounts on some channels, dormancy on others).
    chain = list(range(n_normal, n_normal + 6))
    chain_edges = list(zip(chain, chain[1:])) + [(chain[0], 3), (chain[-1], 17)]
    chain_features = 1.0 + rng.choice([-2.0, 2.0], size=(6, 5)) + rng.normal(scale=0.2, size=(6, 5))

    return Graph(
        n_nodes=n_normal + 6,
        edges=edges + chain_edges,
        features=np.vstack([features, chain_features]),
        name="custom",
    )


def main() -> None:
    graph = build_my_graph()
    graph.validate()
    print(f"Custom graph: {graph.n_nodes} nodes, {graph.n_edges} edges, {graph.n_features} features")

    detector = TPGrGAD(TPGrGADConfig.fast(seed=0))
    result = detector.fit_detect(graph)

    print(f"\n{result.n_candidates} candidate groups scored; threshold τ = {result.threshold:.3f}")
    print("Flagged groups (most suspicious first):")
    for group in sorted(result.anomalous_groups, key=lambda g: -(g.score or 0))[:5]:
        print(f"  score={group.score:.3f} members={sorted(group.nodes)}")

    suspicious_chain = set(range(60, 66))
    anchors_in_chain = len(set(int(a) for a in result.anchor_nodes) & suspicious_chain)
    best_overlap = max(
        (len(set(group.nodes) & suspicious_chain) for group in result.top_groups(10)),
        default=0,
    )
    print(f"\nAnchor nodes inside the planted 6-account chain: {anchors_in_chain}/6")
    print(f"Best overlap between a top-10 group and the chain: {best_overlap}/6 accounts recovered")


if __name__ == "__main__":
    main()
