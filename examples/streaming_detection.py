"""Streaming laundering-ring detection on a live transaction feed.

The batch examples score a frozen snapshot; production AML systems watch a
*stream*.  This script replays an AMLSim-style transaction feed — accounts
appearing, transactions arriving, one laundering ring planted mid-stream —
through the incremental detector, and shows:

* cheap incremental ticks (dirty-region re-scoring) between drift-budget
  refits,
* the planted burst being picked up within a tick or two of arriving,
* the final streamed result matching the batch pipeline on the final
  snapshot exactly.

Run with::

    python examples/streaming_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets.stream import make_burst_stream
from repro.stream import StreamConfig, replay_event_stream


def main() -> None:
    stream = make_burst_stream(dataset="simml", scale=0.15, seed=3, n_ticks=8)
    print(
        f"Transaction stream '{stream.name}': {stream.base.n_nodes} accounts at open, "
        f"{stream.final.n_nodes} after {stream.n_ticks} ticks; "
        f"laundering ring of {len(stream.burst_group)} accounts planted at tick {stream.burst_tick}"
    )

    config = TPGrGADConfig.fast(seed=1)
    summary = replay_event_stream(
        stream, config, StreamConfig(refit_policy="budget", drift_budget=0.25)
    )
    print()
    print(summary.render())

    print("\nPer-tick trace:")
    for i, tick in enumerate(summary.ticks):
        print(
            f"  tick {i}: {tick.mode:11s} {tick.seconds * 1e3:7.1f}ms  "
            f"touched={tick.n_touched:3d} dirty-ball={tick.dirty_ball:4d} "
            f"pairs reused/redone {tick.pairs_reused}/{tick.pairs_recomputed}  "
            f"flagged={tick.result.n_anomalous}"
        )

    batch = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(stream.final)
    drift = float(np.max(np.abs(summary.final_result.scores - batch.scores)))
    print(f"\nFinal streamed scores vs batch fit_detect on the final snapshot: "
          f"max |difference| = {drift:.2e}")


if __name__ == "__main__":
    main()
