"""Setuptools shim so `pip install -e .` / `setup.py develop` work with older toolchains."""
from setuptools import setup

setup()
